"""Strict read-one / write-ALL.

The classic baseline ROWAA improves on: reads need any copy, but a write
must update *every* copy, so a single down site blocks all writes.  No
fail-locks are ever needed — and no writes happen during any failure.
"""

from __future__ import annotations

from repro.replication.strategy import ReplicationStrategy


class RowaStrategy(ReplicationStrategy):
    """Reads need one site; writes need all of them."""

    def can_read(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= 1

    def can_write(self, up_sites: set[int]) -> bool:
        return len(up_sites) == self.num_sites
