"""Quorum consensus (weighted voting with equal weights).

The [Bern84]/[ElAb85] family the paper cites: an operation proceeds when it
can assemble a quorum of copies, with read/write quorum sizes satisfying
``r + w > n`` and ``w + w > n`` so any two conflicting quorums intersect.
Version numbers (our item versions) identify the newest copy in a read
quorum — no fail-locks required, but a minority partition can do nothing.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.replication.strategy import ReplicationStrategy


class QuorumStrategy(ReplicationStrategy):
    """Majority quorums by default; custom ``r``/``w`` if valid."""

    def __init__(
        self, num_sites: int, read_quorum: int | None = None, write_quorum: int | None = None
    ) -> None:
        super().__init__(num_sites)
        majority = num_sites // 2 + 1
        self.read_quorum = read_quorum if read_quorum is not None else majority
        self.write_quorum = write_quorum if write_quorum is not None else majority
        if not 1 <= self.read_quorum <= num_sites:
            raise ConfigurationError(f"bad read quorum {self.read_quorum}")
        if not 1 <= self.write_quorum <= num_sites:
            raise ConfigurationError(f"bad write quorum {self.write_quorum}")
        if self.read_quorum + self.write_quorum <= num_sites:
            raise ConfigurationError(
                f"r + w must exceed n: {self.read_quorum}+{self.write_quorum} "
                f"<= {num_sites}"
            )
        if 2 * self.write_quorum <= num_sites:
            raise ConfigurationError(
                f"2w must exceed n: 2*{self.write_quorum} <= {num_sites}"
            )

    def can_read(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= self.read_quorum

    def can_write(self, up_sites: set[int]) -> bool:
        return len(up_sites) >= self.write_quorum
