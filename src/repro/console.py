"""Interactive mini-RAID console — the paper's managing site, live.

Run ``python -m repro.console`` and poke the cluster by hand::

    mini-raid> fail 0
    mini-raid> run 20
    mini-raid> recover 0
    mini-raid> chart
    mini-raid> audit

This is the modern analogue of the paper's §1.2 managing site, which
"provide[d] interactive control of system actions".
"""

from __future__ import annotations

import cmd
import shlex
import sys

from repro.errors import ReproError
from repro.system.interactive import InteractiveDriver


class MiniRaidConsole(cmd.Cmd):
    """Command shell over an :class:`InteractiveDriver`."""

    intro = (
        "mini-RAID interactive managing site.  Type help or ? for commands.\n"
    )
    prompt = "mini-raid> "

    def __init__(self, driver: InteractiveDriver | None = None, **cmd_kwargs):
        super().__init__(**cmd_kwargs)
        self.driver = driver if driver is not None else InteractiveDriver.build()

    # -- helpers -----------------------------------------------------------------

    def _int_arg(self, arg: str, name: str) -> int | None:
        parts = shlex.split(arg)
        if not parts:
            self.stdout.write(f"usage: {name} <number>\n")
            return None
        try:
            return int(parts[0])
        except ValueError:
            self.stdout.write(f"not a number: {parts[0]}\n")
            return None

    # -- commands ------------------------------------------------------------------

    def do_txn(self, arg: str) -> None:
        """txn [site] — submit one random transaction (to SITE if given)."""
        site = None
        if arg.strip():
            site = self._int_arg(arg, "txn")
            if site is None:
                return
        try:
            record = self.driver.submit_txn(site=site)
        except ReproError as exc:
            self.stdout.write(f"error: {exc}\n")
            return
        outcome = "committed" if record.committed else (
            f"ABORTED ({record.abort_reason.value})"
        )
        self.stdout.write(
            f"txn {record.txn_id} @ site {record.coordinator}: {outcome}, "
            f"{record.size} ops, {record.coordinator_elapsed:.0f} ms"
            f"{', ' + str(record.copiers_requested) + ' copier(s)' if record.copiers_requested else ''}\n"
        )

    def do_run(self, arg: str) -> None:
        """run N — submit N random transactions."""
        count = self._int_arg(arg, "run")
        if count is None:
            return
        try:
            records = self.driver.run_txns(count)
        except ReproError as exc:
            self.stdout.write(f"error: {exc}\n")
            return
        commits = sum(1 for r in records if r.committed)
        self.stdout.write(f"{commits}/{count} committed\n")

    def do_fail(self, arg: str) -> None:
        """fail N — cause site N to fail."""
        site = self._int_arg(arg, "fail")
        if site is None:
            return
        try:
            self.driver.fail_site(site)
        except ReproError as exc:
            self.stdout.write(f"error: {exc}\n")
            return
        self.stdout.write(f"site {site} is down\n")

    def do_recover(self, arg: str) -> None:
        """recover N — bring site N back up (type-1 control transaction)."""
        site = self._int_arg(arg, "recover")
        if site is None:
            return
        try:
            self.driver.recover_site(site)
        except ReproError as exc:
            self.stdout.write(f"error: {exc}\n")
            return
        self.stdout.write(f"site {site} is up (recovering via fail-locks)\n")

    def do_status(self, arg: str) -> None:
        """status — per-site state, session number, stale-copy count."""
        for row in self.driver.status():
            state = "up  " if row["alive"] else "DOWN"
            self.stdout.write(
                f"site {row['site']}: {state} session={row['session']} "
                f"stale_copies={row['stale']}\n"
            )

    def do_locks(self, arg: str) -> None:
        """locks — fail-lock counts per site."""
        counts = self.driver.cluster.faillock_counts()
        for site, count in sorted(counts.items()):
            self.stdout.write(f"site {site}: {count} fail-locked copies\n")

    def do_chart(self, arg: str) -> None:
        """chart — ASCII chart of the fail-lock history."""
        self.stdout.write(self.driver.chart() + "\n")

    def do_audit(self, arg: str) -> None:
        """audit — check the replicated-copy consistency invariant."""
        problems = self.driver.cluster.audit_consistency()
        if problems:
            for p in problems:
                self.stdout.write(f"VIOLATION: {p}\n")
        else:
            self.stdout.write("consistent: fail-locks exactly track staleness\n")

    def do_stats(self, arg: str) -> None:
        """stats — run counters so far."""
        for name, value in sorted(self.driver.metrics.counters.as_dict().items()):
            self.stdout.write(f"{name}: {value}\n")

    def do_quit(self, arg: str) -> bool:
        """quit — leave the console."""
        return True

    do_exit = do_quit
    do_EOF = do_quit


def main() -> None:  # pragma: no cover - interactive entry
    import argparse

    parser = argparse.ArgumentParser(description="mini-RAID interactive console")
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--db", type=int, default=50)
    parser.add_argument("--max-txn", type=int, default=10)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    driver = InteractiveDriver.build(
        db_size=args.db,
        num_sites=args.sites,
        max_txn_size=args.max_txn,
        seed=args.seed,
    )
    MiniRaidConsole(driver).cmdloop()


if __name__ == "__main__":  # pragma: no cover
    main()
