"""Measurement record types.

One row per measured thing, in the vocabulary of the paper's experiments:
transaction timings split by coordinator/participant role (Experiment 1),
control transaction durations by type and role (Experiment 1), copier
exchanges (Experiments 1 and 2), and per-transaction fail-lock samples (the
series plotted in Figures 1–3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.txn.transaction import AbortReason


@dataclass(slots=True)
class TxnRecord:
    """Outcome and timing of one database transaction."""

    txn_id: int
    seq: int                      # 1-based submission order (the x axis)
    coordinator: int
    committed: bool
    abort_reason: AbortReason
    size: int                     # number of operations
    items_read: int
    items_written: int
    submitted_at: float
    finished_at: float
    coordinator_elapsed: float    # reception -> 2PC completion (§2.2.1)
    participant_elapsed: dict[int, float] = field(default_factory=dict)
    copiers_requested: int = 0
    clear_notices_sent: int = 0

    @property
    def elapsed(self) -> float:
        """End-to-end time as the managing site saw it."""
        return self.finished_at - self.submitted_at


@dataclass(slots=True)
class ControlRecord:
    """One control transaction occurrence."""

    kind: int                     # 1, 2, or 3
    site_id: int                  # where the duration was measured
    role: str                     # "recovering" | "operational" | "announcer"
    started_at: float
    finished_at: float

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass(slots=True)
class CopierRecord:
    """One copier exchange (request -> copies installed)."""

    txn_id: int
    requester: int
    source: int
    items: int
    batch: bool
    started_at: float
    finished_at: float = -1.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass(slots=True)
class RecoveryPeriodRecord:
    """One recovery period of one site (type-1 completion -> last
    fail-lock clear), as tracked by its
    :class:`~repro.core.recovery.RecoveryManager`.

    ``interrupted`` marks a period that never completed because the site
    failed again and started a new one — the flapping-site case; its
    ``finished_at`` stays -1.
    """

    site_id: int
    policy: str                   # RecoveryPolicy value
    started_at: float
    finished_at: float
    initial_stale: int
    copier_requests: int
    batch_copier_requests: int
    refreshed_by_write: int
    refreshed_by_copier: int
    interrupted: bool = False

    @property
    def elapsed(self) -> float:
        """Recovery-period length; -1 when interrupted."""
        if self.finished_at < 0:
            return -1.0
        return self.finished_at - self.started_at


@dataclass(slots=True, frozen=True)
class ViolationRecord:
    """One protocol-invariant violation flagged by the chaos auditor.

    ``invariant`` names the audited property (``atomicity``,
    ``session-monotonicity``, ``faillock-coverage``, ``convergence``);
    ``description`` is a deterministic, human-readable account of the
    violating state.
    """

    invariant: str
    time: float
    description: str
    txn_id: int = -1
    site_id: int = -1
    item_id: int = -1

    def format(self) -> str:
        """One deterministic report line."""
        return f"t={self.time:.1f}ms [{self.invariant}] {self.description}"


@dataclass(slots=True)
class FailLockSample:
    """Fail-lock counts observed after one transaction completes.

    ``locks_per_site[k]`` is the number of data items whose copy on site
    ``k`` is out-of-date — exactly the y axis of Figures 1–3.
    """

    seq: int
    time: float
    locks_per_site: dict[int, int]

    def total(self) -> int:
        """System-wide fail-locks (the paper's inconsistency measure)."""
        return sum(self.locks_per_site.values())
