"""Measurement infrastructure.

The paper instruments mini-RAID "in the software by referencing the
processor clock"; here the simulated clock plays that role.  The collector
accumulates per-transaction records, control-transaction durations, and
fail-lock samples — the raw series from which every table and figure in the
paper is regenerated.
"""

from repro.metrics.stats import mean, median, stddev, percentile, summarize, Summary
from repro.metrics.counters import CounterSet
from repro.metrics.records import (
    TxnRecord,
    ControlRecord,
    FailLockSample,
    CopierRecord,
    ViolationRecord,
)
from repro.metrics.collector import MetricsCollector
from repro.metrics.availability import availability_of, AvailabilityReport
from repro.metrics.sketch import P2Quantile, QuantileSketch
from repro.metrics.streaming import (
    LatencyDigest,
    ReservoirSample,
    StreamingStats,
    StreamingTxnSink,
    Window,
    WindowedSeries,
)

__all__ = [
    "mean",
    "median",
    "stddev",
    "percentile",
    "summarize",
    "Summary",
    "CounterSet",
    "TxnRecord",
    "ControlRecord",
    "FailLockSample",
    "CopierRecord",
    "ViolationRecord",
    "MetricsCollector",
    "availability_of",
    "AvailabilityReport",
    "P2Quantile",
    "QuantileSketch",
    "StreamingStats",
    "LatencyDigest",
    "ReservoirSample",
    "Window",
    "WindowedSeries",
    "StreamingTxnSink",
]
