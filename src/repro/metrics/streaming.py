"""Streaming (O(1)-memory) aggregation of transaction outcomes.

The exact-record pipeline (:class:`repro.metrics.MetricsCollector` keeping
one :class:`TxnRecord` per transaction) grows linearly with run length,
which caps the §3 availability experiments at toy transaction counts.
This module provides the aggregation sink the soak engine uses instead:

* :class:`StreamingStats` — Welford mean/variance plus min/max, mergeable;
* :class:`LatencyDigest` — stats + a :class:`QuantileSketch` for
  p50/p95/p99 with a documented relative-error bound;
* :class:`ReservoirSample` — Algorithm-R uniform sample of exemplar
  transactions, driven by an injected seeded stream so soak runs stay
  byte-deterministic;
* :class:`WindowedSeries` — fixed-width time windows of arrivals,
  completions, latency, and gauge snapshots (in-flight, fail-locks) —
  O(sim-duration / window), independent of transaction count;
* :class:`StreamingTxnSink` — the ``MetricsCollector``-compatible sink
  tying those together; consumes each :class:`TxnRecord` at completion
  time and retains only aggregates.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.metrics.records import TxnRecord
from repro.metrics.sketch import P2Quantile, QuantileSketch
from repro.metrics.stats import Summary
from repro.sim.rng import RandomStream

__all__ = [
    "StreamingStats",
    "LatencyDigest",
    "ReservoirSample",
    "Window",
    "WindowedSeries",
    "StreamingTxnSink",
]


class StreamingStats:
    """Welford online mean/variance with min/max; constant memory."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Population variance, matching :func:`repro.metrics.stats.stddev`."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Chan's parallel-variance combine; returns self."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def __repr__(self) -> str:
        return f"StreamingStats(n={self.count}, mean={self.mean:.3f})"


class LatencyDigest:
    """Streaming latency summary: moments plus quantile sketch."""

    __slots__ = ("stats", "sketch")

    def __init__(self, rel_err: float = 0.01) -> None:
        self.stats = StreamingStats()
        self.sketch = QuantileSketch(rel_err)

    def add(self, value: float) -> None:
        self.stats.add(value)
        self.sketch.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def quantile(self, p: float) -> float:
        return self.sketch.quantile(p)

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        self.stats.merge(other.stats)
        self.sketch.merge(other.sketch)
        return self

    def to_summary(self) -> Summary:
        """A :class:`Summary` shaped like :func:`summarize` — median and
        p95 come from the sketch, so they carry its relative-error bound."""
        if self.count == 0:
            return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return Summary(
            count=self.count,
            mean=self.stats.mean,
            median=self.sketch.quantile(50.0),
            stddev=self.stats.stddev,
            minimum=self.stats.minimum,
            maximum=self.stats.maximum,
            p95=self.sketch.quantile(95.0),
        )


class ReservoirSample:
    """Algorithm-R uniform reservoir of at most ``k`` items.

    Draws come from an injected :class:`RandomStream` (one ``randrange``
    per item past the first ``k``), so a seeded run samples the same
    exemplars every time.
    """

    __slots__ = ("k", "_rng", "items", "seen")

    def __init__(self, k: int, rng: RandomStream) -> None:
        if k < 0:
            raise ValueError(f"reservoir size must be >= 0: {k}")
        self.k = k
        self._rng = rng
        self.items: list = []
        self.seen = 0

    def offer(self, item) -> None:
        self.seen += 1
        if self.k == 0:
            return
        if len(self.items) < self.k:
            self.items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.k:
            self.items[slot] = item

    def __len__(self) -> int:
        return len(self.items)


class Window:
    """One fixed-width time window of the soak series."""

    __slots__ = ("index", "start_ms", "arrivals", "commits", "aborts",
                 "latency", "p95", "in_flight", "faillocks")

    def __init__(self, index: int, start_ms: float) -> None:
        self.index = index
        self.start_ms = start_ms
        self.arrivals = 0
        self.commits = 0
        self.aborts = 0
        self.latency = StreamingStats()
        self.p95 = P2Quantile(0.95)
        # Gauges sampled when the window opens (see WindowedSeries.on_open).
        self.in_flight = 0
        self.faillocks = 0

    @property
    def done(self) -> int:
        return self.commits + self.aborts

    @property
    def availability(self) -> Optional[float]:
        """Committed fraction of completions; None when nothing completed."""
        if self.done == 0:
            return None
        return self.commits / self.done


class WindowedSeries:
    """Contiguous fixed-width windows from t=0 onward.

    ``on_open`` (if set) is called for every newly created window, which
    is where the engine snapshots gauges (in-flight count, fail-lock
    total).  Windows are created lazily but contiguously, so quiet spans
    still appear in the series as empty windows.
    """

    __slots__ = ("window_ms", "windows", "on_open")

    def __init__(
        self,
        window_ms: float,
        on_open: Optional[Callable[[Window], None]] = None,
    ) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive: {window_ms}")
        self.window_ms = window_ms
        self.windows: list[Window] = []
        self.on_open = on_open

    def _window_at(self, t_ms: float) -> Window:
        index = max(0, int(t_ms // self.window_ms))
        while len(self.windows) <= index:
            window = Window(len(self.windows), len(self.windows) * self.window_ms)
            self.windows.append(window)
            if self.on_open is not None:
                self.on_open(window)
        return self.windows[index]

    def note_arrival(self, t_ms: float) -> None:
        self._window_at(t_ms).arrivals += 1

    def note_done(
        self, t_ms: float, committed: bool, latency_ms: Optional[float]
    ) -> None:
        window = self._window_at(t_ms)
        if committed:
            window.commits += 1
        else:
            window.aborts += 1
        if latency_ms is not None:
            window.latency.add(latency_ms)
            window.p95.add(latency_ms)

    def __len__(self) -> int:
        return len(self.windows)


class StreamingTxnSink:
    """Aggregates finished transactions without retaining records.

    Attach via ``MetricsCollector(txn_sink=..., retain_txns=False)``; every
    :class:`TxnRecord` still flows through ``record_txn`` (counters keep
    working) but lands here instead of an ever-growing list.
    """

    __slots__ = ("latency_all", "latency_committed", "abort_reasons",
                 "commit_sizes", "windows", "exemplars")

    def __init__(
        self,
        window_ms: float = 1000.0,
        rel_err: float = 0.01,
        exemplar_k: int = 0,
        exemplar_rng: Optional[RandomStream] = None,
        on_window_open: Optional[Callable[[Window], None]] = None,
    ) -> None:
        if exemplar_k and exemplar_rng is None:
            raise ValueError("exemplar sampling needs an injected RandomStream")
        self.latency_all = LatencyDigest(rel_err)
        self.latency_committed = LatencyDigest(rel_err)
        self.abort_reasons: dict[str, int] = {}
        self.commit_sizes = StreamingStats()
        self.windows = WindowedSeries(window_ms, on_open=on_window_open)
        self.exemplars = ReservoirSample(
            exemplar_k, exemplar_rng if exemplar_rng is not None else None
        )

    def __call__(self, record: TxnRecord) -> None:
        elapsed = record.elapsed
        self.latency_all.add(elapsed)
        if record.committed:
            self.latency_committed.add(elapsed)
            self.commit_sizes.add(record.size)
        else:
            reason = record.abort_reason.value if record.abort_reason else "unknown"
            self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1
        self.windows.note_done(record.finished_at, record.committed, elapsed)
        if self.exemplars.k:
            self.exemplars.offer(_exemplar_of(record))

    def note_arrival(self, t_ms: float) -> None:
        self.windows.note_arrival(t_ms)

    def abort_count(self, reason: str) -> int:
        return self.abort_reasons.get(reason, 0)


def _exemplar_of(record: TxnRecord) -> dict:
    """Compact, JSON-ready exemplar of one transaction."""
    aborted = record.abort_reason is not None and record.abort_reason.value != "none"
    return {
        "txn": record.txn_id,
        "coordinator": record.coordinator,
        "committed": record.committed,
        "abort_reason": record.abort_reason.value if aborted else None,
        "size": record.size,
        "submitted_at": record.submitted_at,
        "latency_ms": record.elapsed,
    }
