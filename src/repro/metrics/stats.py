"""Small, dependency-free summary statistics.

The paper reports averages of times recorded "after a stable state of
transaction processing was achieved"; :func:`summarize` provides the same
plus dispersion, for experiment tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Iterable[float]) -> float:
    """Median; 0.0 for an empty input."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100), linear interpolation; 0.0 if empty."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    result = ordered[low] * (1 - frac) + ordered[high] * frac
    # Subnormal inputs can underflow the interpolation to 0.0, landing
    # outside the bracketing samples; clamp back into their range.
    return min(max(result, ordered[low]), ordered[high])


@dataclass(slots=True, frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    stddev: float
    minimum: float
    maximum: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} med={self.median:.1f} "
            f"sd={self.stddev:.1f} min={self.minimum:.1f} max={self.maximum:.1f} "
            f"p95={self.p95:.1f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` (all zeros for an empty sample)."""
    values = list(values)
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(values),
        mean=mean(values),
        median=median(values),
        stddev=stddev(values),
        minimum=min(values),
        maximum=max(values),
        p95=percentile(values, 95.0),
    )
