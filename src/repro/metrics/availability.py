"""Data-availability accounting (Experiment 2's subject).

The paper's notion of availability on a recovering site: the up-to-date
portion of its database is immediately usable, so availability at any
moment is the fraction of items *not* fail-locked.  The report aggregates a
run's fail-lock samples into the numbers Experiment 2 discusses — peak
inconsistency, transactions to full recovery, and clearing-rate buckets
("the first 10 fail-locks were cleared in only 6 transactions and the last
10 fail-locks were cleared in 106").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.records import FailLockSample


@dataclass(slots=True)
class AvailabilityReport:
    """Aggregated availability picture for one site over one run."""

    site_id: int
    db_size: int
    peak_locks: int = 0
    peak_seq: int = -1
    recovery_start_seq: int = -1     # first sample after the peak
    recovery_end_seq: int = -1       # first sample back at zero locks
    txns_to_recover: int = -1
    min_availability: float = 1.0
    # (locks remaining, txns it took to clear the previous bucket of 10)
    clearing_buckets: list[tuple[int, int]] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.recovery_end_seq >= 0


def availability_of(
    samples: list[FailLockSample], site_id: int, db_size: int, bucket: int = 10
) -> AvailabilityReport:
    """Analyse one site's fail-lock series.

    ``bucket`` controls the clearing-rate analysis granularity (the paper
    uses 10 fail-locks per bucket).
    """
    report = AvailabilityReport(site_id=site_id, db_size=db_size)
    series = [(s.seq, s.locks_per_site.get(site_id, 0)) for s in samples]
    if not series:
        return report

    # ``>=`` anchors the peak at the *end* of any plateau: the last
    # transaction at the maximum is where recovery-by-clearing begins, so
    # bucket timings are not inflated by the idle plateau.
    for seq, locks in series:
        if locks >= report.peak_locks:
            report.peak_locks = locks
            report.peak_seq = seq
    report.min_availability = 1.0 - report.peak_locks / db_size if db_size else 1.0

    if report.peak_locks == 0:
        return report

    # Recovery phase: from the peak forward, find when locks reach zero.
    after_peak = [(seq, locks) for seq, locks in series if seq >= report.peak_seq]
    report.recovery_start_seq = report.peak_seq
    for seq, locks in after_peak:
        if locks == 0:
            report.recovery_end_seq = seq
            report.txns_to_recover = seq - report.peak_seq
            break

    # Clearing-rate buckets: how many transactions each successive batch of
    # ``bucket`` fail-locks took to clear.
    threshold = report.peak_locks - bucket
    bucket_start = report.peak_seq
    for seq, locks in after_peak:
        while locks <= max(threshold, 0) and threshold >= 0:
            report.clearing_buckets.append((max(threshold, 0), seq - bucket_start))
            bucket_start = seq
            threshold -= bucket
        if locks == 0:
            break
    return report
