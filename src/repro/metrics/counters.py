"""Named monotonic counters."""

from __future__ import annotations


class CounterSet:
    """A dictionary of named counts with a forgiving increment API."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` (creating it at 0); returns new value."""
        if amount < 0:
            raise ValueError(f"counters only go up: {name} += {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount
        return self._counts[name]

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """A snapshot copy of all counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero everything."""
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({inner})"
