"""The metrics collector shared by all sites and the managing site."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.metrics.counters import CounterSet
from repro.metrics.records import (
    ControlRecord,
    CopierRecord,
    FailLockSample,
    RecoveryPeriodRecord,
    TxnRecord,
    ViolationRecord,
)
from repro.metrics.stats import Summary, summarize


class MetricsCollector:
    """Accumulates every measurement series a cluster run produces.

    By default every :class:`TxnRecord` is retained in ``txns`` (the
    exact-record mode all existing experiments replay byte-identically).
    Long soak runs instead pass ``retain_txns=False`` plus a ``txn_sink``
    callable (e.g. :class:`repro.metrics.streaming.StreamingTxnSink`):
    records still flow through ``record_txn`` once, but only aggregates
    survive, keeping memory flat in the transaction count.
    """

    def __init__(
        self,
        txn_sink: Optional[Callable[[TxnRecord], None]] = None,
        retain_txns: bool = True,
    ) -> None:
        self.txn_sink = txn_sink
        self.retain_txns = retain_txns
        self.txns: list[TxnRecord] = []
        self.controls: list[ControlRecord] = []
        self.copiers: list[CopierRecord] = []
        self.recoveries: list[RecoveryPeriodRecord] = []
        self.faillock_samples: list[FailLockSample] = []
        self.violations: list[ViolationRecord] = []
        self.counters = CounterSet()
        # Participant elapsed times staged here until the managing site
        # finalizes the transaction's record.
        self._pending_participants: dict[int, dict[int, float]] = {}

    def note_participant(self, txn_id: int, site_id: int, elapsed: float) -> None:
        """Stage one participant's elapsed time for ``txn_id``."""
        self._pending_participants.setdefault(txn_id, {})[site_id] = elapsed

    def pop_participants(self, txn_id: int) -> dict[int, float]:
        """Collect (and forget) staged participant times for ``txn_id``."""
        return self._pending_participants.pop(txn_id, {})

    # -- recording -----------------------------------------------------------

    def record_txn(self, record: TxnRecord) -> None:
        if self.retain_txns:
            self.txns.append(record)
        if self.txn_sink is not None:
            self.txn_sink(record)
        self.counters.incr("txns")
        self.counters.incr("commits" if record.committed else "aborts")

    def record_control(self, record: ControlRecord) -> None:
        self.controls.append(record)
        self.counters.incr(f"control_type{record.kind}")

    def record_copier(self, record: CopierRecord) -> None:
        self.copiers.append(record)
        self.counters.incr("copiers")
        if record.batch:
            self.counters.incr("batch_copiers")

    def record_recovery_period(self, record: RecoveryPeriodRecord) -> None:
        self.recoveries.append(record)
        self.counters.incr("recovery_periods")
        if record.interrupted:
            self.counters.incr("recovery_periods_interrupted")

    def record_faillock_sample(self, sample: FailLockSample) -> None:
        self.faillock_samples.append(sample)

    def record_violation(self, record: ViolationRecord) -> None:
        self.violations.append(record)
        self.counters.incr("violations")
        self.counters.incr(f"violation_{record.invariant}")

    # -- queries the experiments use -------------------------------------------

    @property
    def committed(self) -> list[TxnRecord]:
        return [t for t in self.txns if t.committed]

    @property
    def aborted(self) -> list[TxnRecord]:
        return [t for t in self.txns if not t.committed]

    def coordinator_times(self, with_copiers: Optional[bool] = None) -> list[float]:
        """Coordinator elapsed times over committed transactions.

        ``with_copiers`` filters to transactions that did (True) or did not
        (False) request copier transactions — the §2.2.3 comparison.
        """
        times = []
        for record in self.committed:
            if with_copiers is True and record.copiers_requested == 0:
                continue
            if with_copiers is False and record.copiers_requested > 0:
                continue
            times.append(record.coordinator_elapsed)
        return times

    def participant_times(self) -> list[float]:
        """All participant elapsed times over committed transactions."""
        times: list[float] = []
        for record in self.committed:
            times.extend(record.participant_elapsed.values())
        return times

    def control_times(self, kind: int, role: Optional[str] = None) -> list[float]:
        """Durations of control transactions of ``kind`` (optionally by role)."""
        return [
            c.elapsed
            for c in self.controls
            if c.kind == kind and (role is None or c.role == role)
        ]

    def faillock_series(self, site_id: int) -> list[tuple[int, int]]:
        """``(txn seq, fail-locks on site)`` pairs — a figure's line."""
        return [
            (s.seq, s.locks_per_site.get(site_id, 0)) for s in self.faillock_samples
        ]

    def abort_count(self) -> int:
        return self.counters.get("aborts")

    def summary(self, values: Iterable[float]) -> Summary:
        """Convenience passthrough to :func:`summarize`."""
        return summarize(values)

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(txns={len(self.txns)}, controls={len(self.controls)}, "
            f"copiers={len(self.copiers)}, samples={len(self.faillock_samples)})"
        )
