"""Online quantile sketches with O(1)/O(log-range) memory.

Two estimators back the soak engine's latency reporting:

* :class:`QuantileSketch` — a DDSketch/HDR-style log-bucket histogram.
  Values land in geometric buckets sized so every bucket midpoint is
  within a configurable *relative* error ``rel_err`` of any value in the
  bucket.  Memory is bounded by the dynamic range of the data (one
  integer per occupied bucket), not by the sample count, and two
  sketches merge by adding bucket counts — an exactly associative and
  commutative operation, so sharded collection order cannot change a
  quantile estimate.

* :class:`P2Quantile` — the classic Jain & Chlamtac P² estimator: five
  markers tracking one target quantile in strictly O(1) memory.  It is
  a heuristic (no hard error bound) and is used where a full sketch per
  object would be wasteful, e.g. the per-window p95 gauge.

Error bound (documented contract, exercised by tests/test_metrics_sketch.py):
for a sketch built with ``rel_err = a``, ``quantile(p)`` returns a value
within relative error ``a`` of *some sample* whose rank brackets the
requested rank — i.e. it lies within ``[lo * (1 - a), hi * (1 + a)]``
where ``lo``/``hi`` are the order statistics flooring/ceiling the rank
``p/100 * (n - 1)``.  Unlike :func:`repro.metrics.stats.percentile`, no
interpolation *between* samples happens, so on gapped (e.g. bimodal)
data the sketch answers with a value near an actual sample rather than
a point inside the gap.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["P2Quantile", "QuantileSketch"]


class QuantileSketch:
    """Mergeable log-bucket quantile sketch for non-negative values."""

    __slots__ = ("rel_err", "_gamma", "_ln_gamma", "_buckets", "_zero",
                 "count", "total", "minimum", "maximum")

    # Values at or below this are indistinguishable from zero for latency
    # purposes and go to a dedicated zero bucket (log() needs v > 0).
    ZERO_EPSILON = 1e-9

    def __init__(self, rel_err: float = 0.01) -> None:
        if not 0.0 < rel_err < 1.0:
            raise ValueError(f"rel_err must be in (0, 1): {rel_err}")
        self.rel_err = rel_err
        self._gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._ln_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"QuantileSketch holds non-negative values: {value}")
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= self.ZERO_EPSILON:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._ln_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _bucket_value(self, index: int) -> float:
        # Bucket i covers (gamma^(i-1), gamma^i]; this midpoint-in-log
        # estimate is within rel_err relative error of the whole range.
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def quantile(self, p: float) -> float:
        """The ``p``-th percentile (0..100); 0.0 on an empty sketch."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * (self.count - 1)
        seen = self._zero
        if seen > rank:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                return self._bucket_value(index)
        return self._bucket_value(max(self._buckets))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (bucket-count addition) and return self.

        Quantile estimates of a merged sketch depend only on the integer
        bucket counts, so merging is exactly associative and commutative
        for every ``quantile()`` query (``total`` is a float sum and may
        differ in the last ulp across merge orders).
        """
        if other.rel_err != self.rel_err:
            raise ValueError(
                f"cannot merge sketches with different rel_err: "
                f"{self.rel_err} vs {other.rel_err}"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def copy(self) -> "QuantileSketch":
        dup = QuantileSketch(self.rel_err)
        dup._buckets = dict(self._buckets)
        dup._zero = self._zero
        dup.count = self.count
        dup.total = self.total
        dup.minimum = self.minimum
        dup.maximum = self.maximum
        return dup

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the sketch's actual memory footprint."""
        return len(self._buckets) + (1 if self._zero else 0)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(rel_err={self.rel_err}, n={self.count}, "
            f"buckets={self.bucket_count})"
        )


class P2Quantile:
    """Jain & Chlamtac's P² single-quantile estimator (O(1) memory)."""

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments",
                 "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
        self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        h = self._heights
        if len(h) < 5:
            h.append(value)
            h.sort()
            return
        n = self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate; exact while fewer than five samples seen."""
        h = self._heights
        if not h:
            return 0.0
        if self.count < 5:
            # Exact nearest-rank answer from the (sorted) bootstrap buffer.
            rank = self.q * (len(h) - 1)
            return h[min(len(h) - 1, round(rank))]
        return h[2]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, n={self.count}, est={self.value():.3f})"
