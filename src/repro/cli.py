"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's artifacts:

===============  =======================================================
``exp1``         §2 overhead tables (fail-locks, control txns, copiers)
``fig1``         §3 Figure 1 with the availability analysis
``fig2``         §4.2.1 Figure 2 (scenario 1)
``fig3``         §4.2.2 Figure 3 (scenario 2)
``ablations``    A1-A6 design-choice studies
``concurrent``   the "complete RAID" open-loop sweep (A8)
``chaos``        randomized fault injection + invariant audit seed sweep
``trace``        record/inspect structured run traces (repro.obs)
``bench``        simulator benchmark harness (repro.perf)
``report``       regenerate EXPERIMENTS.md (everything above)
===============  =======================================================

The global ``--profile`` flag wraps any command in :mod:`cProfile` and
prints the top functions by cumulative time; ``chaos --jobs N`` and
``report --jobs N`` fan sweep seeds across worker processes with
identical output (see docs/PERFORMANCE.md).

``trace`` has its own subcommands: ``record`` (trace an experiment preset
or a chaos seed into a run directory), ``show`` (phase-attributed timeline
of one transaction), ``list`` (per-transaction run summary), ``cat``
(filtered raw events), ``diff`` (compare two exported runs), and
``validate`` (schema-check a run directory).  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_exp1(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_control_overhead,
        run_copier_overhead,
        run_faillock_overhead,
    )
    from repro.experiments.report import format_table

    fl = run_faillock_overhead(seed=args.seed)
    print("Fail-locks maintenance (§2.2.1):")
    print(
        format_table(
            ["role", "without", "paper", "with", "paper"],
            [
                (r, f"{a:.0f} ms", f"{b:.0f} ms", f"{c:.0f} ms", f"{d:.0f} ms")
                for r, a, b, c, d in fl.rows()
            ],
        )
    )
    ctrl = run_control_overhead(seed=args.seed)
    print("\nControl transactions (§2.2.2):")
    print(
        format_table(
            ["control transaction", "measured", "paper"],
            [(n, f"{m:.0f} ms", f"{p:.0f} ms") for n, m, p in ctrl.rows()],
        )
    )
    cop = run_copier_overhead(seed=args.seed)
    print("\nCopier transactions (§2.2.3):")
    print(
        format_table(
            ["measurement", "measured", "paper"],
            [(n, f"{m:.0f} ms", f"{p:.0f} ms") for n, m, p in cop.rows()],
        )
    )
    print(
        f"\ncopier increase: +{cop.increase_pct:.0f} % (paper: +45 %), "
        f"clearing share: {cop.clearing_share_pct:.0f} pts (paper: ~30 pts)"
    )
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import run_figure1

    result = run_figure1(seed=args.seed)
    print(result.chart())
    report = result.report
    print(
        f"\npeak {report.peak_locks}/50 fail-locked; "
        f"{report.txns_to_recover} txns to recover; "
        f"{result.copiers} copiers; {result.aborts} aborts"
    )
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments import run_scenario1

    result = run_scenario1(seed=args.seed)
    print(result.chart())
    print(f"\naborts: {result.aborts} (paper: 13) — {result.abort_reasons}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments import run_scenario2

    result = run_scenario2(seed=args.seed)
    print(result.chart())
    print(f"\naborts: {result.aborts} (paper: 0)")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations
    from repro.experiments.report import format_table

    print("A1 two-step recovery:")
    print(
        format_table(
            ["policy", "threshold", "txns to recover", "copiers"],
            [
                (r.policy, r.threshold, r.txns_to_recover, r.copiers)
                for r in ablations.run_two_step_recovery(seed=args.seed)
            ],
        )
    )
    print("\nA4 strategy comparison:")
    print(
        format_table(
            ["strategy", "commits", "aborts"],
            [
                (r.strategy, r.commits, r.aborts)
                for r in ablations.run_strategy_comparison(seed=args.seed)
            ],
        )
    )
    print("\nA5 failure detection:")
    print(
        format_table(
            ["detection", "commits", "aborts"],
            [
                (r.detection, r.commits, r.aborts)
                for r in ablations.run_failure_detection(seed=args.seed)
            ],
        )
    )
    return 0


def _cmd_concurrent(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.system.config import SystemConfig
    from repro.system.openloop import run_open_loop

    rows = []
    for rate in args.rates:
        config = SystemConfig(
            seed=args.seed,
            concurrency_control=True,
            cores=5,
            wire_latency_ms=9.0,
            max_txn_size=5,
        )
        result = run_open_loop(config, txn_count=args.txns, arrival_rate_tps=rate)
        rows.append(
            (
                rate,
                f"{result.throughput_tps:.1f}",
                f"{result.latency.mean:.0f} ms",
                result.lock_parks,
                result.deadlock_aborts,
            )
        )
    print(
        format_table(
            ["arrival (tps)", "throughput", "mean latency", "lock waits",
             "deadlock aborts"],
            rows,
        )
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import FaultPlan, format_sweep_report, run_seed_sweep
    from repro.errors import ConfigurationError

    plan = {
        "default": FaultPlan,
        "quiet": FaultPlan.quiet,
        "aggressive": FaultPlan.aggressive,
        "lossy-core": FaultPlan.lossy,
        "correlated": FaultPlan.correlated,
        "flapping": FaultPlan.flapping,
        "partition-recovery": FaultPlan.partition_recovery,
    }[args.mode]()
    if args.drop_rate is not None:
        plan.drop_rate = args.drop_rate
    if args.duplicate_rate is not None:
        plan.duplicate_rate = args.duplicate_rate
    if args.delay_rate is not None:
        plan.delay_rate = args.delay_rate
    if args.reorder_rate is not None:
        plan.reorder_rate = args.reorder_rate
    if args.crash_rate is not None:
        plan.crash_rate = args.crash_rate
    if args.partition_rate is not None:
        plan.partition_rate = args.partition_rate
    try:
        plan.validate()
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    seeds = range(args.seed, args.seed + args.seeds)
    report = run_seed_sweep(
        seeds,
        sites=args.sites,
        db_size=args.db,
        txns=args.txns,
        plan=plan,
        mutate=args.mutate,
        jobs=args.jobs,
    )
    text = format_sweep_report(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    if args.mutate:
        # Mutation mode is an auditor self-test: silence means the auditor
        # would also miss a real regression.
        return 0 if report.total_violations > 0 else 1
    return 1 if report.total_violations > 0 else 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.obs import record_chaos, record_experiment

    out = Path(args.out)
    try:
        if args.chaos_seed is not None:
            manifest = record_chaos(
                args.chaos_seed,
                out_dir=out,
                sites=args.sites,
                db_size=args.db,
                txns=args.txns,
                lossy_core=args.lossy_core,
            )
        else:
            manifest = record_experiment(args.exp, seed=args.seed, out_dir=out)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"recorded {manifest['scenario']} (seed {manifest['seed']}): "
        f"{manifest['events']} events, {len(manifest['transactions'])} txns, "
        f"{manifest['sim_time_ms']:.1f} ms simulated -> {out}/"
    )
    if manifest["violations"]:
        print(f"VIOLATIONS: {len(manifest['violations'])}")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.format import show_txn

    print(show_txn(Path(args.dir), args.txn, tree=args.tree))
    return 0


def _cmd_trace_list(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.format import render_run_summary

    print(render_run_summary(Path(args.dir)))
    return 0


def _cmd_trace_cat(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.export import load_events
    from repro.obs.format import filter_events

    events = filter_events(
        load_events(Path(args.dir)),
        txn=args.txn,
        kind=args.kind,
        site=args.site,
    )
    shown = events if args.limit is None else events[: args.limit]
    for event in shown:
        print(event.describe())
    if len(events) > len(shown):
        print(f"... {len(events) - len(shown)} more events (raise --limit)")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.format import diff_runs

    problems = diff_runs(Path(args.dir_a), Path(args.dir_b))
    if not problems:
        print(f"identical: {args.dir_a} == {args.dir_b}")
        return 0
    for problem in problems:
        print(problem)
    return 1


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import validate_run_dir

    problems = validate_run_dir(Path(args.dir))
    if not problems:
        print(f"ok: {args.dir} is schema-valid")
        return 0
    for problem in problems:
        print(f"SCHEMA: {problem}")
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    content = generate_report(seed=args.seed, jobs=args.jobs)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(content)
    print(f"wrote {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import (
        check_regression,
        render_bench_table,
        run_simcore_bench,
        run_sweep_bench,
        validate_simcore_doc,
        validate_sweep_doc,
        write_bench_files,
    )
    from repro.perf.soakbench import (
        render_soak_bench,
        run_soak_bench,
        validate_soak_bench_doc,
        write_soak_bench,
    )

    if args.soak:
        # The soak flatness gate is its own (subprocess-heavy) measurement;
        # run it alone rather than on every bench invocation.
        doc = run_soak_bench(quick=args.quick, seed=args.seed)
        print(render_soak_bench(doc))
        problems = validate_soak_bench_doc(doc)
        if args.write:
            write_soak_bench(doc)
            print("wrote BENCH_soak.json")
        if problems:
            for problem in problems:
                print(f"BENCH: {problem}", file=sys.stderr)
            return 1
        return 0

    if args.recovery:
        from repro.recovery.bench import (
            check_recovery_regression,
            render_recovery_bench,
            run_recovery_bench,
            validate_recovery_bench_doc,
            write_recovery_bench,
        )

        doc = run_recovery_bench(quick=args.quick, seed=args.seed)
        print(render_recovery_bench(doc))
        problems = validate_recovery_bench_doc(doc)
        if args.check:
            try:
                with open("BENCH_recovery.json", encoding="utf-8") as fh:
                    committed = json.load(fh)
            except OSError as exc:
                problems.append(f"BENCH_recovery.json: {exc}")
            else:
                problems += [
                    f"committed BENCH_recovery.json: {p}"
                    for p in validate_recovery_bench_doc(committed)
                ]
                problems += check_recovery_regression(
                    committed, doc, tolerance=args.tolerance
                )
        if args.write:
            write_recovery_bench(doc)
            print("wrote BENCH_recovery.json")
        if problems:
            for problem in problems:
                print(f"BENCH: {problem}", file=sys.stderr)
            return 1
        return 0

    simcore = run_simcore_bench(quick=args.quick)
    sweep = run_sweep_bench(quick=args.quick, jobs=args.jobs)
    print(render_bench_table(simcore, sweep))

    problems = validate_simcore_doc(simcore) + validate_sweep_doc(sweep)
    if args.check:
        from repro.perf.bench import check_parallel_floor

        try:
            with open("BENCH_simcore.json", encoding="utf-8") as fh:
                committed = json.load(fh)
        except OSError as exc:
            problems.append(f"BENCH_simcore.json: {exc}")
        else:
            problems += [
                f"committed BENCH_simcore.json: {p}"
                for p in validate_simcore_doc(committed)
            ]
            problems += check_regression(
                committed, simcore, tolerance=args.tolerance
            )
        try:
            with open("BENCH_sweep.json", encoding="utf-8") as fh:
                committed_sweep = json.load(fh)
        except OSError as exc:
            problems.append(f"BENCH_sweep.json: {exc}")
        else:
            problems += [
                f"committed BENCH_sweep.json: {p}"
                for p in validate_sweep_doc(committed_sweep)
            ]
            problems += check_parallel_floor(committed_sweep, sweep)
    if args.write:
        write_bench_files(simcore, sweep)
        print("wrote BENCH_simcore.json, BENCH_sweep.json")
    if problems:
        for problem in problems:
            print(f"BENCH: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    """Run the recovery-time experiment family and emit the
    byte-deterministic repro.recovery/1 report (repro.recovery)."""
    from repro.recovery import (
        build_recovery_report,
        render_recovery_text,
        run_recovery_matrix,
        validate_recovery_report,
        write_recovery_report,
        write_recovery_svg,
    )

    cells = run_recovery_matrix(
        donor_counts=tuple(args.donors),
        stale_sizes=tuple(args.stale),
        policies=tuple(dict.fromkeys(args.policies)),
        seed=args.seed,
        wire_latency_ms=args.wire_ms,
    )
    doc = build_recovery_report(
        cells, seed=args.seed, wire_latency_ms=args.wire_ms
    )
    problems = validate_recovery_report(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(render_recovery_text(doc))
    if args.out:
        write_recovery_report(doc, args.out)
        print(f"report -> {args.out}")
    if args.svg:
        write_recovery_svg(doc, args.svg)
        print(f"figure -> {args.svg}")
    return 0


def _check_config_from_args(args: argparse.Namespace) -> "object":
    from repro.check import CheckConfig

    kinds = {k.strip() for k in args.explore.split(",") if k.strip()}
    unknown = kinds - {"order", "fates", "faults"}
    if unknown:
        print(
            f"error: unknown choice kinds {sorted(unknown)} "
            "(valid: order, fates, faults)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return CheckConfig(
        sites=args.sites,
        db_size=args.db,
        txns=args.txns,
        seed=args.seed,
        mutate=args.mutate,
        explore_order="order" in kinds,
        explore_fates="fates" in kinds,
        explore_faults="faults" in kinds,
        max_branch=args.max_branch,
        max_drops=args.max_drops,
        max_crashes=args.max_crashes,
        max_recoveries=args.max_recoveries,
        min_up=args.min_up,
    )


def _print_check_stats(stats: "object") -> None:
    print(
        f"runs: {stats.runs}, states: {stats.states}, "
        f"pruned: {stats.pruned_visited} visited + {stats.pruned_sleep} sleep, "
        f"budget exhausted: {'yes' if stats.budget_exhausted else 'no'}"
    )


def _cmd_check_explore(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import build_schedule_doc, explore, save_schedule

    config = _check_config_from_args(args)
    if args.jobs is not None and args.jobs > 1:
        from repro.check.explorer import explore_parallel

        result = explore_parallel(
            config,
            max_runs=args.max_runs,
            max_depth=args.max_depth,
            sleep_sets=not args.no_sleep_sets,
            jobs=args.jobs,
        )
    else:
        result = explore(
            config,
            max_runs=args.max_runs,
            max_depth=args.max_depth,
            sleep_sets=not args.no_sleep_sets,
        )
    _print_check_stats(result.stats)
    if result.found:
        print(f"counterexample: {result.counterexample}")
        print(f"violates: {result.violation.format()}")
        if args.out:
            save_schedule(
                Path(args.out),
                build_schedule_doc(
                    config,
                    result.counterexample,
                    result.counterexample_run,
                    note="found by repro check explore",
                ),
            )
            print(f"wrote {args.out}")
    else:
        print("no violation found within budget")
    if args.mutate:
        # Mutation mode is an explorer self-test: exit 0 iff the planted
        # bug was found (mirrors `repro chaos --mutate`).
        return 0 if result.found else 1
    return 1 if result.found else 0


def _cmd_check_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import (
        CheckConfig,
        export_counterexample,
        load_schedule,
        run_schedule,
    )
    from repro.errors import CheckError

    try:
        doc = load_schedule(Path(args.file))
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = CheckConfig.from_dict(doc["config"])
    if args.export:
        _manifest, result = export_counterexample(
            Path(args.export), config, doc["decisions"], note=doc.get("note", "")
        )
        print(f"exported obs artifacts -> {args.export}/")
    else:
        result = run_schedule(config, doc["decisions"])
    print(
        f"replayed {len(doc['decisions'])} decisions: "
        f"{result.events_fired} events, {result.commits} commits, "
        f"{result.aborts} aborts, "
        f"{len(result.violations)} violations"
    )
    for record in result.violations:
        print(f"  {record.format()}")
    observed = doc.get("observed")
    if observed is not None:
        mismatches = []
        if result.events_fired != observed["events_fired"]:
            mismatches.append(
                f"events_fired: replay {result.events_fired} != "
                f"recorded {observed['events_fired']}"
            )
        recorded = [v["invariant"] for v in observed["violations"]]
        replayed = [v.invariant for v in result.violations]
        if replayed != recorded:
            mismatches.append(
                f"violations: replay {replayed} != recorded {recorded}"
            )
        if mismatches:
            for mismatch in mismatches:
                print(f"DIVERGED: {mismatch}", file=sys.stderr)
            return 1
        print("replay matches the recorded run")
    return 0


def _cmd_check_shrink(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import (
        CheckConfig,
        build_schedule_doc,
        load_schedule,
        save_schedule,
        shrink,
    )
    from repro.errors import CheckError

    try:
        doc = load_schedule(Path(args.file))
        config = CheckConfig.from_dict(doc["config"])
        result = shrink(config, doc["decisions"])
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"shrunk {doc['decisions']} -> {result.vector} "
        f"({result.removed} deviations removed, {result.tests_run} test runs, "
        f"invariant {result.invariant!r} preserved)"
    )
    out = args.out or args.file
    save_schedule(
        Path(out),
        build_schedule_doc(
            config,
            result.vector,
            result.run,
            note=f"shrunk from {len(doc['decisions'])} decisions",
        ),
    )
    print(f"wrote {out}")
    return 0


def _cmd_check_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import load_schedule
    from repro.errors import CheckError

    try:
        doc = load_schedule(Path(args.file))
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = doc["config"]
    decisions = doc["decisions"]
    print(f"schedule {args.file} ({doc['schema']})")
    print(
        f"  system: {config['sites']} sites, {config['db_size']} items, "
        f"{config['txns']} txns, seed {config['seed']}"
        f"{', MUTATED' if config.get('mutate') else ''}"
    )
    kinds = [
        kind
        for kind, on in (
            ("order", config.get("explore_order")),
            ("fates", config.get("explore_fates")),
            ("faults", config.get("explore_faults")),
        )
        if on
    ]
    print(f"  choice kinds: {', '.join(kinds) or 'none'}")
    print(
        f"  decisions: {decisions} "
        f"({sum(1 for v in decisions if v)} deviations)"
    )
    observed = doc.get("observed")
    if observed:
        print(
            f"  observed: {observed['events_fired']} events, "
            f"{observed['commits']} commits, {observed['aborts']} aborts, "
            f"{observed['choice_points']} choice points, "
            f"{len(observed['violations'])} violations"
        )
        for violation in observed["violations"]:
            print(
                f"    t={violation['time']:.1f}ms [{violation['invariant']}] "
                f"{violation['description']}"
            )
    if doc.get("note"):
        print(f"  note: {doc['note']}")
    return 0


def _cmd_check_selftest(args: argparse.Namespace) -> int:
    """End-to-end proof the checker catches real bugs.

    Re-introduces the PR-1 protocol mutation (fail-lock setting
    disabled), explores within a small budget, shrinks the counterexample
    to a 1-minimal schedule, exports it with obs artifacts, and replays
    the export in-process to verify it reproduces.  Exit 0 iff every
    stage succeeds — this is what CI runs.
    """
    import tempfile
    from pathlib import Path

    from repro.check import (
        CheckConfig,
        explore,
        export_counterexample,
        load_schedule,
        run_schedule,
        shrink,
    )
    from repro.obs import validate_run_dir

    config = CheckConfig(mutate=True)
    result = explore(config, max_runs=args.max_runs)
    _print_check_stats(result.stats)
    if not result.found:
        print("SELFTEST: explorer missed the planted mutation", file=sys.stderr)
        return 1
    print(f"found: {result.counterexample} ({result.violation.format()})")

    shrunk = shrink(config, result.counterexample)
    print(
        f"shrunk to: {shrunk.vector} ({shrunk.tests_run} test runs, "
        f"invariant {shrunk.invariant!r})"
    )

    out = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="check-"))
    manifest, exported = export_counterexample(
        out, config, shrunk.vector, note="mutation self-test counterexample"
    )
    problems = validate_run_dir(out)
    if problems or not manifest["violations"]:
        for problem in problems:
            print(f"SELFTEST: export invalid: {problem}", file=sys.stderr)
        if not manifest["violations"]:
            print("SELFTEST: export lost the violation", file=sys.stderr)
        return 1
    print(f"exported counterexample + obs artifacts -> {out}/")

    doc = load_schedule(out / "schedule.json")
    replay = run_schedule(CheckConfig.from_dict(doc["config"]), doc["decisions"])
    if (
        replay.events_fired != exported.events_fired
        or [v.invariant for v in replay.violations]
        != [v.invariant for v in exported.violations]
    ):
        print("SELFTEST: replay diverged from export", file=sys.stderr)
        return 1
    print("replay reproduces the violation; selftest passed")
    return 0


def _soak_config_from_args(args: argparse.Namespace) -> "SoakConfig":
    from repro.soak import SoakConfig

    return SoakConfig(
        seed=args.seed,
        txns=args.txns,
        rate_tps=args.rate,
        shape=args.shape,
        peak_tps=args.peak,
        period_ms=args.period_ms,
        workload=args.workload,
        skew=args.skew,
        storm_every_ms=args.storm_every_ms,
        read_fraction=args.read_fraction,
        num_sites=args.sites,
        db_size=args.db,
        window_ms=args.window_ms,
        detection=args.detection,
        recovery_policy=args.recovery_policy,
        exemplars=args.exemplars,
        fail_site=None if args.no_fail else args.fail_site,
        fail_at_ms=args.fail_at_ms,
        recover_at_ms=args.recover_at_ms,
    )


def _cmd_soak_run(args: argparse.Namespace) -> int:
    """Run a heavy-traffic soak through a fail/recover cycle and report
    the windowed availability/latency series (repro.soak)."""
    from repro.soak import (
        build_report,
        render_soak_text,
        run_soak,
        validate_soak_report,
        write_report,
        write_soak_svg,
    )

    config = _soak_config_from_args(args)
    result = run_soak(config)
    doc = build_report(result)
    problems = validate_soak_report(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(render_soak_text(doc))
    if args.out:
        write_report(doc, args.out)
        print(f"report -> {args.out}")
    if args.svg:
        write_soak_svg(doc, args.svg)
        print(f"figure -> {args.svg}")
    if args.trace_exemplars:
        return _soak_trace_exemplars(config, result, args.trace_exemplars)
    return 0


def _soak_trace_exemplars(config, result, out_dir: str) -> int:
    """Re-run the soak with tracing on and export a run directory whose
    interesting transactions are the first run's reservoir exemplars.

    The re-run replays byte-identically (same config, same seed), so the
    exemplar txn ids sampled by the first run name the same transactions
    in the traced run — no need to pay tracing overhead while sampling.
    """
    import json as _json
    from pathlib import Path

    from repro.obs.export import export_run
    from repro.obs.sink import TraceSink
    from repro.soak import run_soak

    exemplar_ids = sorted(e["txn"] for e in result.sink.exemplars.items)
    if not exemplar_ids:
        print(
            "no exemplars sampled (raise --exemplars); nothing to trace",
            file=sys.stderr,
        )
        return 1
    sink = TraceSink(enabled=True)
    traced = run_soak(config, trace=sink)
    out = Path(out_dir)
    export_run(
        out,
        sink,
        scenario="soak",
        seed=config.seed,
        sites=config.num_sites,
        db_size=config.db_size,
        sim_time_ms=traced.elapsed_ms,
    )
    (out / "exemplars.json").write_text(
        _json.dumps({"txns": exemplar_ids}, indent=2) + "\n",
        encoding="utf-8",
    )
    from repro.obs.timeline import build_timelines

    # A reservoir exemplar can be a transaction the fail window settled
    # without a commit/abort pair, which has no complete trace window.
    shown = build_timelines(sink.events)
    print(f"traced run -> {out}/ ({len(exemplar_ids)} exemplar txns)")
    for txn in exemplar_ids:
        if txn in shown:
            print(f"  repro trace show {txn} --dir {out}")
        else:
            print(f"  txn {txn}: settled without a complete window (no timeline)")
    return 0


def _cmd_soak_validate(args: argparse.Namespace) -> int:
    """Schema-check a soak report written by ``repro soak run --out``."""
    import json as _json

    from repro.soak import validate_soak_report

    with open(args.file, "r", encoding="utf-8") as fh:
        doc = _json.load(fh)
    problems = validate_soak_report(doc)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if not problems:
        totals = doc["totals"]
        print(
            f"valid soak report ({doc['schema']}): {totals['txns']} txns, "
            f"{totals['commits']} commits, {len(doc['windows']['series'])} "
            f"windows"
        )
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Bhargava/Noll/Sabo 1987: replicated copy "
        "control during site failure and recovery.",
    )
    parser.add_argument("--seed", type=int, default=42, help="run seed")
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile; print the top functions "
        "by cumulative time",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("exp1", help="§2 overhead tables").set_defaults(fn=_cmd_exp1)
    sub.add_parser("fig1", help="§3 Figure 1").set_defaults(fn=_cmd_fig1)
    sub.add_parser("fig2", help="§4 Figure 2").set_defaults(fn=_cmd_fig2)
    sub.add_parser("fig3", help="§4 Figure 3").set_defaults(fn=_cmd_fig3)
    sub.add_parser("ablations", help="design-choice studies").set_defaults(
        fn=_cmd_ablations
    )

    concurrent = sub.add_parser("concurrent", help="complete-RAID sweep")
    concurrent.add_argument("--txns", type=int, default=300)
    concurrent.add_argument(
        "--rates", type=float, nargs="+", default=[2.0, 6.0, 12.0]
    )
    concurrent.set_defaults(fn=_cmd_concurrent)

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault injection + invariant audit seed sweep",
    )
    chaos.add_argument(
        "--seeds", type=int, default=20,
        help="number of seeds to sweep, starting at --seed",
    )
    chaos.add_argument("--txns", type=int, default=60, help="txns per seed")
    chaos.add_argument(
        "--mode",
        choices=[
            "default", "quiet", "aggressive", "lossy-core",
            "correlated", "flapping", "partition-recovery",
        ],
        default="default",
        help="fault plan preset; lossy-core faults ALL message types "
        "(silent drops) and runs the retransmission + timeout layers; "
        "correlated fells several sites in one slot, flapping re-fails "
        "sites right after recovery, partition-recovery isolates a "
        "recovering site mid-period "
        "(explicit rate flags still override the preset)",
    )
    chaos.add_argument("--sites", type=int, default=4, help="database sites")
    chaos.add_argument("--db", type=int, default=32, help="data items")
    chaos.add_argument(
        "--mutate", action="store_true",
        help="disable fail-lock setting (auditor self-test: exit 0 iff "
        "the auditor catches the planted bug)",
    )
    chaos.add_argument("--drop-rate", type=float, default=None)
    chaos.add_argument("--duplicate-rate", type=float, default=None)
    chaos.add_argument("--delay-rate", type=float, default=None)
    chaos.add_argument(
        "--reorder-rate", type=float, default=None,
        help="FIFO-breaking early delivery (protocol-unsafe demo)",
    )
    chaos.add_argument("--crash-rate", type=float, default=None)
    chaos.add_argument(
        "--partition-rate", type=float, default=None,
        help="network partitions (ROWAA-unsafe demo; see docs/PROTOCOL.md)",
    )
    chaos.add_argument("--output", default=None, help="write report to file")
    chaos.add_argument(
        "--jobs", type=int, default=None,
        help="fan seeds across N worker processes (identical report)",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    trace = sub.add_parser(
        "trace", help="record/inspect structured run traces (repro.obs)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="trace an experiment preset or chaos seed"
    )
    record.add_argument(
        "--exp", choices=["1", "2", "3", "smoke"], default="1",
        help="experiment preset to trace (ignored with --chaos-seed)",
    )
    record.add_argument(
        "--chaos-seed", type=int, default=None,
        help="trace one chaos seed instead of an experiment preset",
    )
    record.add_argument(
        "--lossy-core", action="store_true",
        help="with --chaos-seed: fault all message types (silent drops) "
        "and run the retransmission + timeout layers",
    )
    record.add_argument("--sites", type=int, default=4,
                        help="chaos only: database sites")
    record.add_argument("--db", type=int, default=32,
                        help="chaos only: data items")
    record.add_argument("--txns", type=int, default=60,
                        help="chaos only: transactions")
    record.add_argument("--out", default="run", help="run directory to write")
    record.set_defaults(fn=_cmd_trace_record)

    show = trace_sub.add_parser(
        "show", help="phase-attributed timeline of one transaction"
    )
    show.add_argument("txn", type=int, help="transaction id")
    show.add_argument("--dir", default="run", help="exported run directory")
    show.add_argument(
        "--tree", action="store_true", help="also print the causal event tree"
    )
    show.set_defaults(fn=_cmd_trace_show)

    lst = trace_sub.add_parser("list", help="per-transaction run summary")
    lst.add_argument("--dir", default="run", help="exported run directory")
    lst.set_defaults(fn=_cmd_trace_list)

    cat = trace_sub.add_parser("cat", help="print (filtered) raw events")
    cat.add_argument("--dir", default="run", help="exported run directory")
    cat.add_argument("--txn", type=int, default=None, help="filter by txn id")
    cat.add_argument(
        "--kind", default=None, help="filter by event kind (e.g. msg.drop)"
    )
    cat.add_argument("--site", type=int, default=None, help="filter by site")
    cat.add_argument("--limit", type=int, default=200, help="max events shown")
    cat.set_defaults(fn=_cmd_trace_cat)

    diff = trace_sub.add_parser(
        "diff", help="compare two exported runs (exit 1 on divergence)"
    )
    diff.add_argument("dir_a", help="first run directory")
    diff.add_argument("dir_b", help="second run directory")
    diff.set_defaults(fn=_cmd_trace_diff)

    validate = trace_sub.add_parser(
        "validate", help="schema-check a run directory (exit 1 on problems)"
    )
    validate.add_argument("--dir", default="run", help="exported run directory")
    validate.set_defaults(fn=_cmd_trace_validate)

    check = sub.add_parser(
        "check",
        help="deterministic schedule-space exploration (repro.check)",
    )
    check_sub = check.add_subparsers(dest="check_command", required=True)

    def _add_shape_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sites", type=int, default=3, help="database sites")
        p.add_argument("--db", type=int, default=8, help="data items")
        p.add_argument("--txns", type=int, default=3, help="transactions")
        p.add_argument(
            "--mutate", action="store_true",
            help="disable fail-lock setting (explorer self-test: exit 0 "
            "iff a violating schedule is found)",
        )
        p.add_argument(
            "--explore", default="order,faults",
            help="comma-separated choice kinds: order, fates, faults",
        )
        p.add_argument(
            "--max-branch", type=int, default=3,
            help="alternatives offered per choice point",
        )
        p.add_argument(
            "--max-drops", type=int, default=1,
            help="fate choices: message drops per run",
        )
        p.add_argument(
            "--max-crashes", type=int, default=1,
            help="fault choices: crashes per run",
        )
        p.add_argument(
            "--max-recoveries", type=int, default=1,
            help="fault choices: recoveries per run",
        )
        p.add_argument(
            "--min-up", type=int, default=1,
            help="never crash below this many up sites",
        )

    explore_p = check_sub.add_parser(
        "explore", help="bounded-DFS the schedule space for violations"
    )
    _add_shape_args(explore_p)
    explore_p.add_argument(
        "--max-runs", type=int, default=200,
        help="total steered re-executions",
    )
    explore_p.add_argument(
        "--max-depth", type=int, default=40,
        help="deepest decision index to branch at",
    )
    explore_p.add_argument(
        "--no-sleep-sets", action="store_true",
        help="disable the commuting-deliveries pruning heuristic",
    )
    explore_p.add_argument(
        "--out", default=None, help="write the counterexample schedule file"
    )
    explore_p.add_argument(
        "--jobs", type=int, default=None,
        help="fan frontier expansion across N pool workers "
        "(disjoint subtree prefixes, deterministically merged)",
    )
    explore_p.set_defaults(fn=_cmd_check_explore)

    replay_p = check_sub.add_parser(
        "replay",
        help="re-execute a schedule file; exit 1 if it diverges from "
        "the recorded run",
    )
    replay_p.add_argument("--file", required=True, help="schedule file")
    replay_p.add_argument(
        "--export", default=None,
        help="also export obs artifacts (run.json, events.jsonl, "
        "trace.json) to this directory",
    )
    replay_p.set_defaults(fn=_cmd_check_replay)

    shrink_p = check_sub.add_parser(
        "shrink", help="delta-debug a schedule file to a minimal one"
    )
    shrink_p.add_argument("--file", required=True, help="schedule file")
    shrink_p.add_argument(
        "--out", default=None,
        help="write the shrunk schedule here (default: overwrite --file)",
    )
    shrink_p.set_defaults(fn=_cmd_check_shrink)

    stats_p = check_sub.add_parser(
        "stats", help="summarize a schedule file"
    )
    stats_p.add_argument("--file", required=True, help="schedule file")
    stats_p.set_defaults(fn=_cmd_check_stats)

    selftest_p = check_sub.add_parser(
        "selftest",
        help="plant the PR-1 protocol mutation; explore, shrink, export, "
        "replay (exit 0 iff the whole pipeline succeeds — the CI smoke)",
    )
    selftest_p.add_argument(
        "--max-runs", type=int, default=60,
        help="exploration budget for the self-test",
    )
    selftest_p.add_argument(
        "--out", default=None,
        help="counterexample directory (default: a temp dir)",
    )
    selftest_p.set_defaults(fn=_cmd_check_selftest)

    soak = sub.add_parser(
        "soak",
        help="heavy-traffic soak through a fail/recover cycle (repro.soak)",
    )
    soak_sub = soak.add_subparsers(dest="soak_command", required=True)

    soak_run = soak_sub.add_parser(
        "run",
        help="sustained open-loop run with streaming metrics and a "
        "scheduled crash; reports the availability dip and recovery",
    )
    soak_run.add_argument("--txns", type=int, default=5000,
                          help="transactions to complete")
    soak_run.add_argument("--rate", type=float, default=25.0,
                          help="base arrival rate (txns/sec)")
    soak_run.add_argument(
        "--shape", choices=["constant", "ramp", "diurnal", "flash"],
        default="constant", help="time-varying load shape",
    )
    soak_run.add_argument(
        "--peak", type=float, default=None,
        help="peak rate for ramp/diurnal/flash (default 2x --rate)",
    )
    soak_run.add_argument(
        "--period-ms", type=float, default=20000.0,
        help="diurnal period / flash-crowd onset time",
    )
    soak_run.add_argument(
        "--workload",
        choices=["uniform", "zipf", "storm", "debitcredit", "wisconsin"],
        default="zipf",
        help="uniform: flat popularity; zipf: static skewed popularity; "
        "storm: the hot set rotates every --storm-every-ms; "
        "debitcredit: TP1 account/teller/branch writes; "
        "wisconsin: read scans + point updates (--read-fraction)",
    )
    soak_run.add_argument("--skew", type=float, default=0.8,
                          help="Zipf skew parameter")
    soak_run.add_argument(
        "--storm-every-ms", type=float, default=10000.0,
        help="storm workload: hot-set rotation period",
    )
    soak_run.add_argument(
        "--read-fraction", type=float, default=0.7,
        help="wisconsin workload: fraction of transactions that are "
        "read scans",
    )
    soak_run.add_argument("--sites", type=int, default=4,
                          help="database sites")
    soak_run.add_argument("--db", type=int, default=128, help="data items")
    soak_run.add_argument("--window-ms", type=float, default=1000.0,
                          help="metrics window width")
    soak_run.add_argument(
        "--detection", choices=["timeout", "announced"], default="timeout",
        help="how survivors learn of the crash (timeout = paper-faithful "
        "client-visible dip)",
    )
    soak_run.add_argument(
        "--recovery-policy",
        choices=["on_demand", "two_step", "parallel"],
        default="on_demand",
        help="how the crashed site catches up (non-default values add a "
        "recoveries section to the report)",
    )
    soak_run.add_argument("--exemplars", type=int, default=20,
                          help="reservoir-sampled exemplar transactions")
    soak_run.add_argument(
        "--trace-exemplars", default=None, metavar="DIR",
        help="re-run the soak with tracing enabled and export a run "
        "directory focused on the sampled exemplar transactions",
    )
    soak_run.add_argument("--fail-site", type=int, default=2,
                          help="site to crash")
    soak_run.add_argument("--no-fail", action="store_true",
                          help="disable fault injection entirely")
    soak_run.add_argument(
        "--fail-at-ms", type=float, default=None,
        help="crash time (default: 35%% through the estimated run)",
    )
    soak_run.add_argument(
        "--recover-at-ms", type=float, default=None,
        help="recovery start (default: fail time + 25%% of the run)",
    )
    soak_run.add_argument("--out", default=None,
                          help="write the JSON report here")
    soak_run.add_argument("--svg", default=None,
                          help="write the availability/latency figure here")
    soak_run.set_defaults(fn=_cmd_soak_run)

    soak_validate = soak_sub.add_parser(
        "validate",
        help="schema-check a soak report (exit 1 on problems)",
    )
    soak_validate.add_argument("--file", required=True,
                               help="report file from soak run --out")
    soak_validate.set_defaults(fn=_cmd_soak_validate)

    bench = sub.add_parser(
        "bench", help="simulator benchmark harness (repro.perf)"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller workloads (CI smoke); still best-of-3 timing",
    )
    bench.add_argument(
        "--write", action="store_true",
        help="write BENCH_simcore.json and BENCH_sweep.json",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on schema problems or a >tolerance events/sec "
        "regression vs the committed BENCH_simcore.json",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec drop for --check",
    )
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep benchmark",
    )
    bench.add_argument(
        "--soak", action="store_true",
        help="run the soak memory-flatness gate instead (short vs 20x "
        "soak in fresh subprocesses; exit 1 unless peaks stay flat)",
    )
    bench.add_argument(
        "--recovery", action="store_true",
        help="run the recovery benchmark instead: deterministic "
        "two_step-vs-parallel recovery times (exact-match gate + the "
        "1.5x speedup floor) and matrix events/sec vs "
        "BENCH_recovery.json",
    )
    bench.set_defaults(fn=_cmd_bench)

    recovery = sub.add_parser(
        "recovery",
        help="recovery-time experiment family: time-to-last-faillock-"
        "clear vs stale size vs donor count vs policy (repro.recovery)",
    )
    recovery.add_argument(
        "--donors", type=int, nargs="+", default=[1, 2, 4, 6],
        help="donor counts to sweep (cluster is donors+1 sites)",
    )
    recovery.add_argument(
        "--stale", type=int, nargs="+", default=[16, 32, 64],
        help="stale-data sizes to sweep (db items staled by a cold crash)",
    )
    recovery.add_argument(
        "--policies", nargs="+", default=["two_step", "parallel"],
        choices=["on_demand", "two_step", "parallel"],
        help="recovery policies to compare",
    )
    recovery.add_argument(
        "--wire-ms", type=float, default=9.0,
        help="wire latency (ms); higher latency rewards fan-out more",
    )
    recovery.add_argument("--out", default=None,
                          help="write the repro.recovery/1 JSON report here")
    recovery.add_argument("--svg", default=None,
                          help="write the recovery-time figure here")
    recovery.set_defaults(fn=_cmd_recovery)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument(
        "--jobs", type=int, default=None,
        help="fan stability replications across N worker processes",
    )
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        rc = profiler.runcall(args.fn, args)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        return rc
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
