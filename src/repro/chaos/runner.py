"""Chaos run orchestration: one seed, or a sweep of them.

:func:`run_chaos_seed` wires a standard cluster with the fault
interposition layer and the invariant auditor, generates a randomized
fail/recover schedule from the same root seed, runs it to quiescence, and
returns a :class:`ChaosRunResult`.  :func:`run_seed_sweep` repeats that
over a seed list and aggregates a :class:`ChaosSweepReport`.

Mutation mode (``mutate=True``) deliberately breaks the protocol —
fail-lock *setting* is disabled while clearing still works, so commits
past a down site silently stop marking its copies stale — to prove the
auditor detects real bugs rather than vacuously passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.chaos.faults import FaultPlan, FaultStats
from repro.chaos.interpose import FaultInjector
from repro.chaos.invariants import InvariantAuditor
from repro.chaos.schedule import build_chaos_scenario
from repro.core.faillocks import FailLockTable
from repro.core.sessions import NominalSessionVector, SiteState
from repro.errors import SimulationError
from repro.metrics.records import ViolationRecord
from repro.net.reliable import ReliableStats
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.sink import TraceSink


class NeuteredFailLockTable(FailLockTable):
    """A fail-lock table that never *sets* a lock (mutation mode).

    Clearing still works, so the bug is one-sided: sites that miss updates
    are silently treated as current — exactly the corruption the paper's
    protocol exists to prevent, and exactly what the ``faillock-coverage``
    and ``convergence`` invariants must catch.

    Installed by swapping ``__class__`` on live tables so every alias the
    site's roles hold (recovery manager, planner) sees the broken behavior.
    """

    # Empty slots keep the object layout identical to the parent, which
    # the live ``__class__`` swap requires.
    __slots__ = ()

    def set_lock(self, item_id: int, site_id: int) -> None:
        self._mask(item_id)  # keep validation, skip the write

    def update_on_commit(
        self, written_items: Iterable[int], vector: NominalSessionVector
    ) -> int:
        clear_mask = 0
        operations = 0
        for site in self.site_ids:
            operations += 1
            if vector.state_of(site) is SiteState.UP:
                clear_mask |= self._bit_of[site]
        count = 0
        for item in written_items:
            self._masks[item] = self._mask(item) & ~clear_mask
            count += operations
        return count

    def update_with_recipients(
        self, recipients_of: dict[int, Iterable[int]]
    ) -> int:
        count = 0
        for item, recipients in recipients_of.items():
            recipient_mask = 0
            for site in recipients:
                recipient_mask |= self._bit(site)
            self._masks[item] = self._mask(item) & ~recipient_mask
            count += len(self.site_ids)
        return count


def neuter_faillocks(cluster: Cluster) -> None:
    """Install the mutation at every site of a built cluster."""
    for site in cluster.sites:
        site.faillocks.__class__ = NeuteredFailLockTable


@dataclass(slots=True)
class ChaosRunResult:
    """Everything one chaos seed produced."""

    seed: int
    txns: int
    commits: int
    aborts: int
    sim_time_ms: float
    fault_stats: FaultStats
    schedule_actions: int
    checks: int
    violations: list[ViolationRecord] = field(default_factory=list)
    mutated: bool = False
    # Lossy-core extras (defaults keep conservative-mode results, and the
    # reports built from them, identical to earlier revisions).
    stalled: bool = False
    net_stats: Optional[ReliableStats] = None
    # Scheduler events fired during the run (benchmark denominator; also a
    # cheap replay fingerprint — a divergent replay rarely fires the same
    # number of events).
    events_fired: int = 0
    # Recovery periods observed (defaults keep pickled results from older
    # workers, and conservative-mode reports, unchanged).  A period is
    # ``interrupted`` when its site failed again before the last fail-lock
    # cleared — the flapping-site case.
    recovery_periods: int = 0
    interrupted_recoveries: int = 0

    @property
    def clean(self) -> bool:
        """True if no invariant violation was flagged."""
        return not self.violations

    def violation_fingerprint(self) -> str:
        """Stable digest of *what* went wrong, ignoring *when*.

        Hashes the ordered (invariant, description, txn, site, item)
        tuples of every violation — everything but the sim-time field, so
        two seeds whose schedules produce the same violating behaviour at
        different instants collapse to one fingerprint.  Empty string for
        clean runs.  Used by the sweep report to dedupe repeated
        violating schedules, and stable across processes (``hashlib``,
        not the ``PYTHONHASHSEED``-randomized builtin ``hash``).
        """
        if not self.violations:
            return ""
        import hashlib

        raw = repr(
            [
                (v.invariant, v.description, v.txn_id, v.site_id, v.item_id)
                for v in self.violations
            ]
        )
        return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


@dataclass(slots=True)
class ChaosSweepReport:
    """Aggregate of a multi-seed chaos sweep."""

    plan: FaultPlan
    results: list[ChaosRunResult] = field(default_factory=list)
    mutated: bool = False

    @property
    def seeds(self) -> list[int]:
        return [r.seed for r in self.results]

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    @property
    def total_checks(self) -> int:
        return sum(r.checks for r in self.results)

    @property
    def dirty_seeds(self) -> list[int]:
        """Seeds that flagged at least one violation."""
        return [r.seed for r in self.results if not r.clean]

    @property
    def stalled_seeds(self) -> list[int]:
        """Seeds whose drive loop stalled (liveness failures)."""
        return [r.seed for r in self.results if r.stalled]


def run_chaos_seed(
    seed: int,
    *,
    sites: int = 4,
    db_size: int = 32,
    txns: int = 60,
    plan: Optional[FaultPlan] = None,
    mutate: bool = False,
    audit: bool = True,
    trace: Optional["TraceSink"] = None,
) -> ChaosRunResult:
    """Run one randomized chaos scenario under ``seed``.

    The same seed drives the workload, the message faults, and the site
    fault schedule (via independent named streams), so a (seed, plan,
    shape) triple replays byte-identically.

    Pass an enabled :class:`~repro.obs.sink.TraceSink` as ``trace`` to
    capture the run's structured trace (repro.obs); tracing is pure
    observation and does not perturb the simulation.
    """
    if plan is None:
        plan = FaultPlan()
    plan.validate()
    # The full fault model needs the layers that make it survivable: the
    # retransmission sublayer (silent drops) and the 2PC timeouts /
    # termination protocol (blocked transactions).
    config = SystemConfig(
        db_size=db_size,
        num_sites=sites,
        seed=seed,
        wire_latency_ms=2.0,
        reliable_delivery=plan.lossy_core,
        timeouts_enabled=plan.lossy_core,
        # Partition-mid-recovery arcs rejoin the isolated site via a fresh
        # fail + type-1; the crash must be cold so writes it committed
        # solo while isolated are discarded instead of surviving as
        # phantom versions no fail-lock covers.
        cold_recovery=plan.partition_mid_recovery,
    )
    cluster = Cluster(config)
    if trace is not None:
        cluster.network.obs = trace
    if mutate:
        neuter_faillocks(cluster)
    injector = FaultInjector(plan, cluster.rng.stream("chaos.faults"))
    cluster.network.interposer = injector
    auditor: Optional[InvariantAuditor] = None
    if audit:
        auditor = InvariantAuditor(cluster)
        cluster.install_probe(auditor)
    scenario = build_chaos_scenario(
        config, plan, cluster.rng.stream("chaos.schedule"), txn_count=txns
    )
    schedule_actions = sum(len(actions) for actions in scenario.actions.values())
    stalled = False
    try:
        cluster.run(scenario)
    except SimulationError:
        # The scheduler drained with the scenario unfinished.  Under chaos
        # that is a *finding* (a liveness violation the sweep must report),
        # not a tooling crash.
        stalled = True
        if auditor is not None:
            auditor.note_stall()
    if auditor is not None:
        auditor.check_quiescence()
    return ChaosRunResult(
        seed=seed,
        txns=txns,
        commits=cluster.metrics.counters.get("commits"),
        aborts=cluster.metrics.counters.get("aborts"),
        sim_time_ms=cluster.now,
        fault_stats=injector.stats,
        schedule_actions=schedule_actions,
        checks=auditor.checks if auditor is not None else 0,
        violations=list(auditor.violations) if auditor is not None else [],
        mutated=mutate,
        stalled=stalled,
        net_stats=(
            cluster.network.reliable.stats
            if cluster.network.reliable is not None
            else None
        ),
        events_fired=cluster.scheduler.fired,
        recovery_periods=cluster.metrics.counters.get("recovery_periods"),
        interrupted_recoveries=cluster.metrics.counters.get(
            "recovery_periods_interrupted"
        ),
    )


def run_seed_sweep(
    seeds: Iterable[int],
    *,
    sites: int = 4,
    db_size: int = 32,
    txns: int = 60,
    plan: Optional[FaultPlan] = None,
    mutate: bool = False,
    jobs: Optional[int] = None,
) -> ChaosSweepReport:
    """Run :func:`run_chaos_seed` for every seed; aggregate the results.

    ``jobs`` > 1 fans the seeds across worker processes (each seed is a
    pure function of its arguments, so the report is identical to the
    serial one — see :mod:`repro.perf.parallel`).
    """
    if jobs is not None and jobs > 1:
        from repro.perf.parallel import run_parallel_seed_sweep

        return run_parallel_seed_sweep(
            seeds,
            sites=sites,
            db_size=db_size,
            txns=txns,
            plan=plan,
            mutate=mutate,
            jobs=jobs,
        )
    if plan is None:
        plan = FaultPlan()
    report = ChaosSweepReport(plan=plan, mutated=mutate)
    for seed in seeds:
        report.results.append(
            run_chaos_seed(
                seed,
                sites=sites,
                db_size=db_size,
                txns=txns,
                plan=plan,
                mutate=mutate,
            )
        )
    return report
