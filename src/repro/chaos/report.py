"""Deterministic text reports for chaos sweeps.

The formatter is intentionally free of wall-clock times, memory addresses,
and dict-order dependence: the same sweep formatted twice yields
byte-identical text, which is what the determinism acceptance check (and
diff-based regression workflows) rely on.
"""

from __future__ import annotations

from repro.chaos.runner import ChaosRunResult, ChaosSweepReport

_HEADER = (
    f"{'seed':>6} {'txns':>5} {'commits':>8} {'aborts':>7} "
    f"{'sched':>6} {'faults':>13} {'checks':>7} {'violations':>10}"
)


def format_run_row(result: ChaosRunResult) -> str:
    """One fixed-width row of the sweep table."""
    return (
        f"{result.seed:>6} {result.txns:>5} {result.commits:>8} "
        f"{result.aborts:>7} {result.schedule_actions:>6} "
        f"{result.fault_stats.describe():>13} {result.checks:>7} "
        f"{len(result.violations):>10}"
    )


def format_sweep_report(report: ChaosSweepReport) -> str:
    """The full sweep report as deterministic text."""
    lines = [
        "chaos sweep report",
        f"plan: {report.plan.describe()}",
        f"mutation: {'faillock setting DISABLED' if report.mutated else 'off'}",
        f"seeds: {len(report.results)}",
        "",
        _HEADER,
        "-" * len(_HEADER),
    ]
    for result in report.results:
        lines.append(format_run_row(result))
    lines.append("-" * len(_HEADER))
    lines.append(
        f"total: {report.total_checks} checks, "
        f"{report.total_violations} violations "
        f"(faults column is drop/dup/delay/reorder)"
    )
    if report.plan.lossy_core:
        # Transport-layer work done to survive the full fault model.
        # Emitted only for lossy-core plans so conservative-mode reports
        # stay byte-identical to those of earlier revisions.
        retransmits = sum(
            r.net_stats.retransmissions for r in report.results if r.net_stats
        )
        dedups = sum(
            r.net_stats.duplicates_suppressed
            for r in report.results
            if r.net_stats
        )
        gave_up = sum(r.net_stats.gave_up for r in report.results if r.net_stats)
        stalls = len(report.stalled_seeds)
        lines.append(
            f"transport: {retransmits} retransmissions, {dedups} duplicates "
            f"suppressed, {gave_up} gave-up; {stalls} stalled run(s)"
        )
    if report.plan.recovery_scenario:
        # Recovery-period summary, emitted only for the recovery-window
        # scenario presets so pre-existing reports stay byte-identical.
        periods = sum(r.recovery_periods for r in report.results)
        interrupted = sum(r.interrupted_recoveries for r in report.results)
        lines.append(
            f"recovery: {periods} period(s) closed, "
            f"{interrupted} interrupted by a re-failure"
        )
    dirty = report.dirty_seeds
    if dirty:
        lines.append("")
        lines.append(f"violations by seed ({len(dirty)} dirty):")
        # Dedupe by violation fingerprint: the first seed exhibiting a
        # violating schedule prints it in full; later seeds with the same
        # fingerprint (same invariants, same descriptions, different sim
        # times at most) get a one-line back-reference.  Mutated sweeps
        # otherwise drown the report in copies of one planted bug.
        first_seed_of: dict[str, int] = {}
        for result in report.results:
            if result.clean:
                continue
            fingerprint = result.violation_fingerprint()
            earlier = first_seed_of.get(fingerprint)
            if earlier is not None:
                lines.append(
                    f"  seed {result.seed}: same as seed {earlier} "
                    f"[sig {fingerprint}]"
                )
                continue
            first_seed_of[fingerprint] = result.seed
            lines.append(f"  seed {result.seed}: [sig {fingerprint}]")
            for record in result.violations:
                lines.append(f"    {record.format()}")
        duplicates = len(dirty) - len(first_seed_of)
        if duplicates:
            lines.append(
                f"  ({len(first_seed_of)} distinct violation signature(s); "
                f"{duplicates} duplicate seed(s) collapsed)"
            )
    else:
        lines.append("no invariant violations.")
    return "\n".join(lines) + "\n"
