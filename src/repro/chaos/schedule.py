"""Randomized site-fault schedules.

Where :mod:`repro.system.scenario` scripts the paper's fixed timelines
("before transaction 101, site 0 was brought up"), this module *generates*
a timeline from a seeded stream: crashes, recoveries, partitions, and
heals sprinkled across the transaction sequence, subject to the validity
rules the managing site enforces (never fail a failed site, never recover
an up site, always keep ``min_up_sites`` believed up so there is a
coordinator to submit to).

The output is an ordinary :class:`~repro.system.scenario.Scenario`, so the
whole existing drive loop — managing site, submission policy, metrics —
runs unchanged under the generated schedule.
"""

from __future__ import annotations

from repro.chaos.faults import FaultPlan
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.system.config import SystemConfig
from repro.system.scenario import (
    FailSite,
    HealNetwork,
    PartitionNetwork,
    RecoverSite,
    Scenario,
    UniformRandom,
)
from repro.workload.uniform import UniformWorkload


def build_chaos_scenario(
    config: SystemConfig,
    plan: FaultPlan,
    rng: RandomStream,
    txn_count: int = 60,
) -> Scenario:
    """Generate a randomized fail/recover/partition/heal scenario.

    Actions are drawn per transaction slot from ``plan``'s schedule rates.
    With ``plan.force_crash`` (the default) one crash is guaranteed in the
    first third of the run and held for ``plan.forced_hold_txns`` slots, so
    every seed commits transactions past a down site and exercises the
    fail-lock machinery the auditor watches.
    """
    plan.validate()
    if txn_count < 1:
        raise ConfigurationError(f"txn_count must be >= 1: {txn_count}")
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=txn_count,
        policy=UniformRandom(),
    )
    sites = list(config.site_ids)
    if len(sites) <= plan.min_up_sites:
        return scenario  # nothing can fail without starving the manager

    up = set(sites)
    down: set[int] = set()
    hold_until: dict[int, int] = {}
    partitioned = False
    # Mid-recovery partitions (plan.partition_mid_recovery) are scheduled
    # as a whole arc — partition, heal, rejoin — in one pass; no new
    # partition until the current arc completes, and the isolated site is
    # withheld from crash/recover rolls while the arc is in flight.
    partitioned_until = 0
    rejoin_site = -1
    rejoin_seq = 0

    forced_seq = -1
    if plan.force_crash:
        forced_seq = rng.randint(2, max(2, txn_count // 3))

    for seq in range(1, txn_count + 1):
        if rejoin_site >= 0 and seq > rejoin_seq:
            up.add(rejoin_site)
            rejoin_site = -1
        if seq == forced_seq and len(up) > plan.min_up_sites:
            # correlated_crashes > 1: the forced crash fells several sites
            # in this same slot (subject to min_up_sites), modelling a
            # rack/power-domain failure.  The first victim draw is shared
            # with the classic path so single-crash plans replay
            # byte-identically.
            for _ in range(plan.correlated_crashes):
                if len(up) <= plan.min_up_sites:
                    break
                victim = rng.choice(sorted(up))
                scenario.add_action(seq, FailSite(victim))
                up.discard(victim)
                down.add(victim)
                hold_until[victim] = seq + plan.forced_hold_txns
            continue

        # Each action kind owns an exclusive slice of [0, 1); a failed
        # guard means "no action this slot", never a different action
        # (otherwise one kind's unusable probability mass would leak into
        # the next kind's slice).
        roll = rng.random()
        crash_hi = plan.crash_rate
        recover_hi = crash_hi + plan.recover_rate
        partition_hi = recover_hi + plan.partition_rate
        heal_hi = partition_hi + plan.heal_rate
        if roll < crash_hi:
            if len(up) > plan.min_up_sites:
                victim = rng.choice(sorted(up))
                scenario.add_action(seq, FailSite(victim))
                up.discard(victim)
                down.add(victim)
        elif roll < recover_hi:
            eligible = [s for s in sorted(down) if seq >= hold_until.get(s, 0)]
            if eligible:
                riser = rng.choice(eligible)
                scenario.add_action(seq, RecoverSite(riser))
                down.discard(riser)
                up.add(riser)
                # Recovery-window scenarios.  Actions appended to the same
                # slot run right after the RecoverSite completes (the
                # drive loop pauses at RecoverSite until the type-1's
                # MGR_RECOVER_DONE), i.e. genuinely *inside* the riser's
                # recovery period.  Both branches draw randomness only
                # when their plan flag is set, so every pre-existing plan
                # replays byte-identically.
                if (
                    plan.partition_mid_recovery
                    and len(sites) >= 3
                    and seq > partitioned_until
                    and rejoin_site < 0
                ):
                    others = tuple(s for s in sites if s != riser)
                    scenario.add_action(
                        seq, PartitionNetwork(groups=((riser,), others))
                    )
                    heal_seq = min(txn_count, seq + 1 + rng.randint(0, 1))
                    scenario.add_action(heal_seq, HealNetwork())
                    # A partitioned-away site must REJOIN, not resume: its
                    # fail-lock table went silently stale while isolated
                    # (majority commits could not reach it), so post-heal
                    # it can neither trust its own view nor serve as a
                    # type-1 responder.  A fresh fail + type-1 discards
                    # the poisoned state — the runner pairs this plan
                    # with cold_recovery so isolated-side writes are
                    # discarded too rather than surviving as phantom
                    # versions no fail-lock covers.
                    scenario.add_action(heal_seq, FailSite(riser))
                    scenario.add_action(heal_seq, RecoverSite(riser))
                    up.discard(riser)
                    rejoin_site = riser
                    rejoin_seq = heal_seq
                    partitioned_until = heal_seq
                if (
                    plan.flap_rate > 0.0
                    and riser in up
                    and len(up) > plan.min_up_sites
                    and rng.random() < plan.flap_rate
                ):
                    scenario.add_action(seq, FailSite(riser))
                    up.discard(riser)
                    down.add(riser)
                    hold_until[riser] = seq + 1 + rng.randint(0, 2)
        elif roll < partition_hi:
            if not partitioned and len(sites) >= 3:
                groups = _random_split(sites, rng)
                scenario.add_action(seq, PartitionNetwork(groups=groups))
                partitioned = True
        elif roll < heal_hi:
            if partitioned:
                scenario.add_action(seq, HealNetwork())
                partitioned = False

    return scenario


def _random_split(
    sites: list[int], rng: RandomStream
) -> tuple[tuple[int, ...], ...]:
    """Split ``sites`` into two non-empty partition groups."""
    shuffled = list(sites)
    rng.shuffle(shuffled)
    cut = rng.randint(1, len(shuffled) - 1)
    left = tuple(sorted(shuffled[:cut]))
    right = tuple(sorted(shuffled[cut:]))
    return (left, right)
