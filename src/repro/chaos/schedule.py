"""Randomized site-fault schedules.

Where :mod:`repro.system.scenario` scripts the paper's fixed timelines
("before transaction 101, site 0 was brought up"), this module *generates*
a timeline from a seeded stream: crashes, recoveries, partitions, and
heals sprinkled across the transaction sequence, subject to the validity
rules the managing site enforces (never fail a failed site, never recover
an up site, always keep ``min_up_sites`` believed up so there is a
coordinator to submit to).

The output is an ordinary :class:`~repro.system.scenario.Scenario`, so the
whole existing drive loop — managing site, submission policy, metrics —
runs unchanged under the generated schedule.
"""

from __future__ import annotations

from repro.chaos.faults import FaultPlan
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.system.config import SystemConfig
from repro.system.scenario import (
    FailSite,
    HealNetwork,
    PartitionNetwork,
    RecoverSite,
    Scenario,
    UniformRandom,
)
from repro.workload.uniform import UniformWorkload


def build_chaos_scenario(
    config: SystemConfig,
    plan: FaultPlan,
    rng: RandomStream,
    txn_count: int = 60,
) -> Scenario:
    """Generate a randomized fail/recover/partition/heal scenario.

    Actions are drawn per transaction slot from ``plan``'s schedule rates.
    With ``plan.force_crash`` (the default) one crash is guaranteed in the
    first third of the run and held for ``plan.forced_hold_txns`` slots, so
    every seed commits transactions past a down site and exercises the
    fail-lock machinery the auditor watches.
    """
    plan.validate()
    if txn_count < 1:
        raise ConfigurationError(f"txn_count must be >= 1: {txn_count}")
    scenario = Scenario(
        workload=UniformWorkload(config.item_ids, config.max_txn_size),
        txn_count=txn_count,
        policy=UniformRandom(),
    )
    sites = list(config.site_ids)
    if len(sites) <= plan.min_up_sites:
        return scenario  # nothing can fail without starving the manager

    up = set(sites)
    down: set[int] = set()
    hold_until: dict[int, int] = {}
    partitioned = False

    forced_seq = -1
    if plan.force_crash:
        forced_seq = rng.randint(2, max(2, txn_count // 3))

    for seq in range(1, txn_count + 1):
        if seq == forced_seq and len(up) > plan.min_up_sites:
            victim = rng.choice(sorted(up))
            scenario.add_action(seq, FailSite(victim))
            up.discard(victim)
            down.add(victim)
            hold_until[victim] = seq + plan.forced_hold_txns
            continue

        # Each action kind owns an exclusive slice of [0, 1); a failed
        # guard means "no action this slot", never a different action
        # (otherwise one kind's unusable probability mass would leak into
        # the next kind's slice).
        roll = rng.random()
        crash_hi = plan.crash_rate
        recover_hi = crash_hi + plan.recover_rate
        partition_hi = recover_hi + plan.partition_rate
        heal_hi = partition_hi + plan.heal_rate
        if roll < crash_hi:
            if len(up) > plan.min_up_sites:
                victim = rng.choice(sorted(up))
                scenario.add_action(seq, FailSite(victim))
                up.discard(victim)
                down.add(victim)
        elif roll < recover_hi:
            eligible = [s for s in sorted(down) if seq >= hold_until.get(s, 0)]
            if eligible:
                riser = rng.choice(eligible)
                scenario.add_action(seq, RecoverSite(riser))
                down.discard(riser)
                up.add(riser)
        elif roll < partition_hi:
            if not partitioned and len(sites) >= 3:
                groups = _random_split(sites, rng)
                scenario.add_action(seq, PartitionNetwork(groups=groups))
                partitioned = True
        elif roll < heal_hi:
            if partitioned:
                scenario.add_action(seq, HealNetwork())
                partitioned = False

    return scenario


def _random_split(
    sites: list[int], rng: RandomStream
) -> tuple[tuple[int, ...], ...]:
    """Split ``sites`` into two non-empty partition groups."""
    shuffled = list(sites)
    rng.shuffle(shuffled)
    cut = rng.randint(1, len(shuffled) - 1)
    left = tuple(sorted(shuffled[:cut]))
    right = tuple(sorted(shuffled[cut:]))
    return (left, right)
