"""Fault plans: what the chaos layer is allowed to do, and how often.

A :class:`FaultPlan` bundles the message-fault rates (drop, duplicate,
delay-jitter, bounded reorder) with the site-fault schedule rates (crash,
recover, partition, heal).  The plan is pure configuration — the seeded
randomness lives in :mod:`repro.chaos.interpose` and
:mod:`repro.chaos.schedule` — so the same plan under the same seed always
produces the same run.

Which faults are safe depends on what the cluster is running:

* **Conservative mode** (``lossy_core=False``, the default — byte-identical
  replay of existing seeds): the cluster runs the paper's bare protocol,
  which assumes reliable FIFO delivery, so faults stay inside that
  assumption.  Drops are restricted to :data:`DROPPABLE` (losses that
  leave only conservative state behind), duplicates to :data:`DUPLICABLE`
  (receivers that dedup or apply idempotently), delays are safe anywhere,
  and reorder is an off-by-default auditor demo.
* **Lossy-core mode** (``lossy_core=True``, via :meth:`FaultPlan.lossy`):
  the runner switches on ``reliable_delivery`` and ``timeouts_enabled``,
  so the retransmission sublayer (:mod:`repro.net.reliable`) and the 2PC
  termination protocol discharge the transport assumption themselves.
  Any message type — 2PC traffic, acks, recovery state, everything — may
  then be silently dropped, duplicated, delayed, or reordered: drops are
  *silent* (no failure notice; recovery is the retransmission layer's
  job), duplicates are caught by the receiver-side dedup window, and
  reordering is undone by the sequence-number reorder buffer.

The managing site's control plane (``MGR_*`` traffic) is never touched in
either mode: it is the experimenter's harness, not the network under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.message import MessageType

# Message types whose loss stays within the BARE protocol's environment
# assumptions (conservative mode only — lossy_core mode ignores this set,
# because the retransmission sublayer makes every loss recoverable).
# The protocol's safety rests on an implicit invariant: all
# operational sites hold IDENTICAL fail-lock knowledge (every commit's
# maintenance and every announcement reaches every operational site), and
# the type-1 recovery install trusts that invariant by REPLACING the
# recovering site's table with any operational responder's.  Losing a
# message breaks the invariant in one of two ways:
#
# * A drop surfaces to the sender exactly like a delivery to a down site,
#   so the sender runs its Appendix-A "destination failed" branch — a
#   FALSE failure suspicion of a live site.  Coordinators with false-down
#   vectors shrink their write-all-available recipient sets; the excluded
#   site's table silently goes stale; the next recovery that picks it as
#   the type-1 responder installs the stale table and destroys the
#   surviving sites' fail-lock knowledge.  This rules out VOTE_REQ,
#   COMMIT, COPY_REQ, and RECOVERY_ANNOUNCE drops — the paper's model is
#   fail-stop, and these losses simulate failures that did not happen.
#
# * A lost FAILURE_ANNOUNCE with corrective ``stale_items`` leaves the
#   receiver UNDER-locked: a stale copy it now believes current.
#
# That leaves exactly the losses after which every table is still correct
# or strictly over-locked (conservative):
#
# * ABORT — the participant keeps staged updates that no commit
#   indication will ever touch; they are discarded state, never applied;
# * CLEAR_FAILLOCKS — the receiver keeps a fail-lock for a copy that was
#   already refreshed; over-locking costs a redundant copier, not safety.
#
# In conservative mode, acks, responses, and manager traffic are never
# faulted: the bare serial drive loop has no timeouts and would simply
# stall.  Under ``lossy_core`` every one of these restrictions is lifted —
# timeouts, retransmission, and the termination protocol exist precisely
# so that 2PC traffic loss is survivable.
DROPPABLE: frozenset[MessageType] = frozenset(
    {
        MessageType.ABORT,
        MessageType.CLEAR_FAILLOCKS,
    }
)

# Message types whose double delivery the receiver tolerates: staged-write
# deduplication (VOTE_REQ), pop-then-ack (COMMIT), and idempotent state
# application (ABORT, COPY_REQ, CLEAR_FAILLOCKS, FAILURE_ANNOUNCE).
DUPLICABLE: frozenset[MessageType] = frozenset(
    {
        MessageType.VOTE_REQ,
        MessageType.COMMIT,
        MessageType.ABORT,
        MessageType.COPY_REQ,
        MessageType.CLEAR_FAILLOCKS,
        MessageType.FAILURE_ANNOUNCE,
    }
)


@dataclass(slots=True)
class FaultPlan:
    """Rates and bounds for every fault class the chaos layer injects.

    All rates are per-opportunity probabilities: message faults roll once
    per transmitted (non-exempt) message, schedule faults roll once per
    transaction slot.
    """

    # Full fault model: drop/duplicate/delay/reorder ANY message type
    # (drops silently — no failure notice).  Requires the cluster to run
    # with ``reliable_delivery`` and ``timeouts_enabled`` (the chaos
    # runner switches both on when it sees this flag); injecting silent
    # loss into the bare protocol would simply stall the drive loop.
    lossy_core: bool = False

    # -- message faults (the interposition layer) --------------------------
    drop_rate: float = 0.02
    duplicate_rate: float = 0.02
    duplicate_gap_ms: float = 5.0
    delay_rate: float = 0.2
    delay_max_ms: float = 25.0
    reorder_rate: float = 0.0          # FIFO-breaking; off by default
    reorder_window_ms: float = 50.0

    # -- site-fault schedule (crash / recover / partition / heal) ----------
    crash_rate: float = 0.06
    recover_rate: float = 0.25
    # Partitions default OFF: ROWAA assumes operational sites stay mutually
    # connected (the paper's environment has no partitions), and an isolated
    # coordinator really does diverge — "write all available" per its own
    # vector commits updates the majority never sees.  Turning this on is a
    # supported way to *watch the auditor catch that divergence*, not a
    # configuration the protocol claims to survive.
    partition_rate: float = 0.0
    heal_rate: float = 0.3
    min_up_sites: int = 1
    # Guarantee at least one crash per schedule (so every seed exercises
    # the fail-lock machinery) and hold the crashed site down for at least
    # this many transactions before it becomes eligible for recovery.
    force_crash: bool = True
    forced_hold_txns: int = 8

    # -- recovery-window scenarios (repro.recovery presets) ----------------
    # How many sites the forced crash fells in the same transaction slot
    # (a rack / power-domain failure).  1 = the classic single crash.
    correlated_crashes: int = 1
    # Probability that a site that just recovered fails again in the same
    # slot — right after its type-1 control transaction, i.e. inside its
    # own recovery period (the flapping-site scenario).  0 = never, and
    # the schedule generator draws no extra randomness, keeping existing
    # presets byte-identical.
    flap_rate: float = 0.0
    # Isolate each recovering site from the other database sites the
    # moment its type-1 completes (a partition striking mid-recovery),
    # healing one to two slots later.
    partition_mid_recovery: bool = False

    @property
    def recovery_scenario(self) -> bool:
        """True when any recovery-window scenario mode is active (the
        gate for recovery-period report lines)."""
        return (
            self.correlated_crashes > 1
            or self.flap_rate > 0.0
            or self.partition_mid_recovery
        )

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any bad value."""
        for name in (
            "drop_rate",
            "duplicate_rate",
            "delay_rate",
            "reorder_rate",
            "crash_rate",
            "recover_rate",
            "partition_rate",
            "heal_rate",
            "flap_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {value}")
        for name in ("duplicate_gap_ms", "delay_max_ms", "reorder_window_ms"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative: {value}")
        if self.min_up_sites < 1:
            raise ConfigurationError(
                f"min_up_sites must be >= 1: {self.min_up_sites}"
            )
        if self.forced_hold_txns < 0:
            raise ConfigurationError(
                f"forced_hold_txns must be >= 0: {self.forced_hold_txns}"
            )
        if self.correlated_crashes < 1:
            raise ConfigurationError(
                f"correlated_crashes must be >= 1: {self.correlated_crashes}"
            )

    def describe(self) -> str:
        """A deterministic one-line summary (report header)."""
        base = (
            f"drop={self.drop_rate:.0%} dup={self.duplicate_rate:.0%} "
            f"delay={self.delay_rate:.0%}<={self.delay_max_ms:.0f}ms "
            f"reorder={self.reorder_rate:.0%} | "
            f"crash={self.crash_rate:.0%} recover={self.recover_rate:.0%} "
            f"partition={self.partition_rate:.0%} heal={self.heal_rate:.0%}"
        )
        # Appended only in lossy-core mode so conservative-mode reports
        # stay byte-identical to those of earlier revisions.
        if self.lossy_core:
            base += " | mode=lossy-core (all message types, silent drops)"
        # Same gating discipline for the recovery-window scenario modes.
        if self.correlated_crashes > 1:
            base += (
                f" | mode=correlated ({self.correlated_crashes} sites in one slot)"
            )
        if self.flap_rate > 0.0:
            base += f" | mode=flapping (flap={self.flap_rate:.0%} after recovery)"
        if self.partition_mid_recovery:
            base += " | mode=partition-recovery (riser isolated after type-1)"
        return base

    @classmethod
    def quiet(cls) -> "FaultPlan":
        """No message faults; only the crash/recover/partition schedule."""
        return cls(drop_rate=0.0, duplicate_rate=0.0, delay_rate=0.0)

    @classmethod
    def lossy(cls) -> "FaultPlan":
        """The full fault model: any message type may be silently dropped,
        duplicated, delayed, or delivered early (FIFO-breaking) — survivable
        because the runner pairs this plan with ``reliable_delivery`` and
        ``timeouts_enabled``."""
        return cls(
            lossy_core=True,
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.25,
            reorder_rate=0.10,
        )

    @classmethod
    def correlated(cls) -> "FaultPlan":
        """Correlated multi-site failure: the forced crash fells two sites
        in the same transaction slot (a rack or power-domain failure), so
        recovery must proceed with a depleted donor pool.  Message faults
        stay quiet to keep the scenario the thing under test."""
        return cls(
            drop_rate=0.0,
            duplicate_rate=0.0,
            delay_rate=0.0,
            correlated_crashes=2,
            recover_rate=0.35,
        )

    @classmethod
    def flapping(cls) -> "FaultPlan":
        """Flapping sites: a recovered site is likely to fail again right
        after its type-1 control transaction — inside its own recovery
        period — then come back once more (the RepCRec-style
        fail/recover-with-stale-replicas model)."""
        return cls(
            drop_rate=0.0,
            duplicate_rate=0.0,
            delay_rate=0.0,
            flap_rate=0.6,
            recover_rate=0.4,
            forced_hold_txns=4,
        )

    @classmethod
    def partition_recovery(cls) -> "FaultPlan":
        """Partitions striking mid-recovery: the moment a site finishes
        its type-1, the network isolates it from every other database
        site for one to two transaction slots.  Its batch copiers bounce,
        it falsely suspects its donors, and the fail-lock machinery must
        keep the divergence conservatively covered."""
        return cls(
            drop_rate=0.0,
            duplicate_rate=0.0,
            delay_rate=0.0,
            partition_mid_recovery=True,
            recover_rate=0.35,
        )

    @classmethod
    def aggressive(cls) -> "FaultPlan":
        """Heavier faults for stress sweeps (still FIFO-preserving, and
        still within the protocol's environment assumptions)."""
        return cls(
            drop_rate=0.06,
            duplicate_rate=0.06,
            delay_rate=0.5,
            delay_max_ms=60.0,
            crash_rate=0.12,
        )


@dataclass(slots=True)
class FaultStats:
    """Counts of faults actually injected during one run."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def note(self, kind: str, mtype: MessageType) -> None:
        """Record one injected fault of ``kind`` on a ``mtype`` message."""
        setattr(self, kind, getattr(self, kind) + 1)
        key = f"{kind}:{mtype.value}"
        self.by_type[key] = self.by_type.get(key, 0) + 1

    @property
    def total(self) -> int:
        """All injected message faults."""
        return self.dropped + self.duplicated + self.delayed + self.reordered

    def describe(self) -> str:
        """Deterministic ``drop/dup/delay/reorder`` summary cell."""
        return f"{self.dropped}/{self.duplicated}/{self.delayed}/{self.reordered}"
