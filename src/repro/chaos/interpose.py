"""The fault interposition layer.

:class:`FaultInjector` implements the network's
:class:`~repro.net.network.MessageInterposer` hook: for every non-exempt
message the network is about to transmit, it rolls the seeded chaos stream
against the :class:`~repro.chaos.faults.FaultPlan` and returns a
:class:`~repro.net.network.MessageFate` — drop the message (with the same
sender-notification semantics as a partition), deliver a duplicate, add
latency jitter, or (opt-in) deliver early, breaking per-channel FIFO.

Because the injector draws from a named stream of the cluster's
:class:`~repro.sim.rng.DeterministicRng` and the scheduler fires events in
a deterministic order, a (seed, plan) pair always injects the identical
fault sequence — chaos runs replay exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.faults import DROPPABLE, DUPLICABLE, FaultPlan, FaultStats
from repro.net.message import Message
from repro.net.network import MessageFate
from repro.sim.rng import RandomStream


class FaultInjector:
    """Seeded message-fault decisions, one per transmitted message."""

    def __init__(self, plan: FaultPlan, rng: RandomStream) -> None:
        plan.validate()
        self.plan = plan
        self._rng = rng
        self.stats = FaultStats()
        self.intercepted = 0

    def intercept(self, msg: Message) -> Optional[MessageFate]:
        """The network's interposition hook (see ``Network._transmit``)."""
        plan = self.plan
        rng = self._rng
        self.intercepted += 1

        if plan.lossy_core:
            return self._intercept_lossy(msg)

        if msg.mtype in DROPPABLE and rng.random() < plan.drop_rate:
            self.stats.note("dropped", msg.mtype)
            return MessageFate(drop=True)

        fate: Optional[MessageFate] = None
        if msg.mtype in DUPLICABLE and rng.random() < plan.duplicate_rate:
            fate = fate if fate is not None else MessageFate()
            fate.duplicate = True
            fate.duplicate_gap = rng.uniform(0.0, plan.duplicate_gap_ms)
            self.stats.note("duplicated", msg.mtype)
        if plan.delay_rate > 0.0 and rng.random() < plan.delay_rate:
            fate = fate if fate is not None else MessageFate()
            fate.delay = rng.uniform(0.0, plan.delay_max_ms)
            self.stats.note("delayed", msg.mtype)
        if plan.reorder_rate > 0.0 and rng.random() < plan.reorder_rate:
            fate = fate if fate is not None else MessageFate()
            fate.reorder = True
            fate.reorder_shift = rng.uniform(0.0, plan.reorder_window_ms)
            self.stats.note("reordered", msg.mtype)
        return fate

    def _intercept_lossy(self, msg: Message) -> Optional[MessageFate]:
        """Full fault model (``lossy_core``): any message type is fair game.

        Drops are *silent* — no sender failure notice, exactly like a real
        lossy network — which is only survivable because the cluster runs
        the retransmission sublayer and the 2PC termination protocol.  The
        conservative :data:`DROPPABLE`/:data:`DUPLICABLE` gates are
        deliberately not consulted; transport acks (``NET_ACK``) are
        faulted like everything else.
        """
        plan = self.plan
        rng = self._rng
        if rng.random() < plan.drop_rate:
            self.stats.note("dropped", msg.mtype)
            return MessageFate(drop=True, silent=True)
        fate: Optional[MessageFate] = None
        if rng.random() < plan.duplicate_rate:
            fate = fate if fate is not None else MessageFate()
            fate.duplicate = True
            fate.duplicate_gap = rng.uniform(0.0, plan.duplicate_gap_ms)
            self.stats.note("duplicated", msg.mtype)
        if plan.delay_rate > 0.0 and rng.random() < plan.delay_rate:
            fate = fate if fate is not None else MessageFate()
            fate.delay = rng.uniform(0.0, plan.delay_max_ms)
            self.stats.note("delayed", msg.mtype)
        if plan.reorder_rate > 0.0 and rng.random() < plan.reorder_rate:
            fate = fate if fate is not None else MessageFate()
            fate.reorder = True
            fate.reorder_shift = rng.uniform(0.0, plan.reorder_window_ms)
            self.stats.note("reordered", msg.mtype)
        return fate

    def __repr__(self) -> str:
        return (
            f"FaultInjector(intercepted={self.intercepted}, "
            f"injected={self.stats.total})"
        )
