"""repro.chaos — randomized fault injection with online invariant auditing.

The paper validates its protocol with hand-scripted failure timelines
(§2–§4); this package complements them with *randomized* testing: a fault
interposition layer on the network (drop / duplicate / delay / reorder,
plus seeded crash–recover–partition–heal schedules) and an online auditor
that checks the protocol's safety invariants while the chaos runs.  A
seed sweep (``repro chaos --seeds N``) turns the pair into a repeatable
search for protocol regressions.

Programmatic usage::

    from repro.chaos import FaultPlan, run_chaos_seed, run_seed_sweep

    result = run_chaos_seed(7)                  # conservative plan
    assert result.clean                         # no invariant violations

    report = run_seed_sweep(range(20), plan=FaultPlan.lossy())
    print(report.dirty_seeds, report.stalled_seeds)

``run_chaos_seed(..., trace=TraceSink(enabled=True))`` additionally
records the run's structured trace (see :mod:`repro.obs`); auditor
findings then appear as ``chaos.violation`` events with causal context.
"""

from repro.chaos.faults import DROPPABLE, DUPLICABLE, FaultPlan, FaultStats
from repro.chaos.interpose import FaultInjector
from repro.chaos.invariants import InvariantAuditor
from repro.chaos.report import format_sweep_report
from repro.chaos.runner import (
    ChaosRunResult,
    ChaosSweepReport,
    NeuteredFailLockTable,
    neuter_faillocks,
    run_chaos_seed,
    run_seed_sweep,
)
from repro.chaos.schedule import build_chaos_scenario

__all__ = [
    "DROPPABLE",
    "DUPLICABLE",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "InvariantAuditor",
    "format_sweep_report",
    "ChaosRunResult",
    "ChaosSweepReport",
    "NeuteredFailLockTable",
    "neuter_faillocks",
    "run_chaos_seed",
    "run_seed_sweep",
    "build_chaos_scenario",
]
