"""Online invariant auditing.

:class:`InvariantAuditor` hangs off the cluster's probe hooks (see
:meth:`~repro.system.cluster.Cluster.install_probe`) and checks, as events
happen, the safety properties the paper's protocol promises:

* **atomicity** — 2PC never lets one site apply a transaction's updates
  while the coordinator aborts it (Appendix A: abort is only possible
  before any commit indication is sent);
* **session-monotonicity** — a site's session number, as stamped on its
  outgoing messages, never decreases on any (src, dst) channel.  Sessions
  only grow (each recovery begins a new session) and channels are FIFO, so
  a decrease means either session bookkeeping or transport order broke.
  Cross-channel interleaving is legitimate and is *not* flagged;
* **faillock-coverage** — after commit-time fail-lock maintenance, every
  copy holder that did *not* receive the update is fail-locked (§1.2: the
  operational sites set fail-locks on behalf of the unavailable ones);
* **convergence** — at quiescence, every copy on an alive site that no
  operational site fail-locks carries the newest version, and all such
  copies agree on the value (the replicated-copy-control invariant the
  cluster's ``audit_consistency`` checks, hardened against chaos-induced
  false failure suspicions by auditing the *union* of the operational
  sites' tables);
* **liveness** — every transaction the managing site submitted reaches a
  commit or abort outcome before quiescence, and the drive loop itself
  never stalls (the scheduler must not drain with the scenario
  unfinished).  This is the guarantee the timeout/retransmission layer
  adds: under message loss the bare protocol would block forever.

Violations are recorded into the cluster's metrics as
:class:`~repro.metrics.records.ViolationRecord` rows and kept on the
auditor for the report layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.faillocks import FailLockTable
from repro.metrics.records import ViolationRecord
from repro.net.message import Message, MessageType
from repro.obs.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.site.site import DatabaseSite
    from repro.system.cluster import Cluster


class InvariantAuditor:
    """Checks protocol invariants live, as the cluster runs."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.violations: list[ViolationRecord] = []
        self.checks = 0
        self._channel_session: dict[tuple[int, int], int] = {}
        self._committed: set[int] = set()
        self._aborted: set[int] = set()
        # Liveness: transactions the managing site submitted vs. the ones
        # it saw complete (both observed from the delivery probe).
        self._submitted: set[int] = set()
        self._finished: set[int] = set()
        self._stalled = False

    # -- flagging -----------------------------------------------------------

    def _flag(
        self,
        invariant: str,
        description: str,
        txn_id: int = -1,
        site_id: int = -1,
        item_id: int = -1,
    ) -> None:
        record = ViolationRecord(
            invariant=invariant,
            time=self.cluster.now,
            description=description,
            txn_id=txn_id,
            site_id=site_id,
            item_id=item_id,
        )
        self.violations.append(record)
        self.cluster.metrics.record_violation(record)
        obs = self.cluster.network.obs
        if obs.enabled:
            # Inherits the current activation scope (e.g. the delivery that
            # triggered the check) as causal parent via the sink's default.
            obs.emit(
                self.cluster.now,
                EventKind.VIOLATION,
                site=site_id,
                txn=txn_id,
                invariant=invariant,
                description=description,
                item=item_id,
            )

    # -- probe hooks (called by network and sites) --------------------------

    def on_message(self, msg: Message) -> None:
        """Delivery probe: session monotonicity + liveness bookkeeping."""
        if msg.mtype is MessageType.MGR_SUBMIT_TXN:
            self._submitted.add(msg.txn_id)
        elif msg.mtype is MessageType.MGR_TXN_DONE:
            self._finished.add(msg.txn_id)
        if msg.session < 0:
            return
        self.checks += 1
        channel = (msg.src, msg.dst)
        last = self._channel_session.get(channel, -1)
        if msg.session < last:
            self._flag(
                "session-monotonicity",
                f"channel {msg.src}->{msg.dst}: {msg.mtype.value} carries "
                f"session {msg.session} after session {last}",
                txn_id=msg.txn_id,
                site_id=msg.src,
            )
        else:
            self._channel_session[channel] = msg.session

    def on_commit_applied(
        self,
        site: "DatabaseSite",
        txn_id: int,
        written_items: list[int],
        recipients: Optional[dict[int, list[int]]],
    ) -> None:
        """A site applied a transaction's committed updates."""
        self.checks += 1
        if txn_id in self._aborted:
            self._flag(
                "atomicity",
                f"site {site.site_id} applied updates of txn {txn_id}, "
                f"which its coordinator aborted",
                txn_id=txn_id,
                site_id=site.site_id,
            )
        self._committed.add(txn_id)
        if recipients is None or not site.config.faillocks_enabled:
            return
        # Coverage: whoever did not receive this update must now be locked.
        for item in written_items:
            got_it = set(recipients.get(item, []))
            for holder in sorted(site.catalog.holders_view(item)):
                self.checks += 1
                if holder in got_it:
                    continue
                if not site.faillocks.is_locked(item, holder):
                    self._flag(
                        "faillock-coverage",
                        f"site {site.site_id}: txn {txn_id} wrote item {item} "
                        f"past site {holder}, but {holder}'s copy is not "
                        f"fail-locked",
                        txn_id=txn_id,
                        site_id=holder,
                        item_id=item,
                    )

    def on_coordinator_abort(self, site_id: int, txn_id: int, reason) -> None:
        """A coordinator aborted a transaction."""
        self.checks += 1
        if txn_id in self._committed:
            self._flag(
                "atomicity",
                f"coordinator {site_id} aborted txn {txn_id} after some site "
                f"already applied its updates",
                txn_id=txn_id,
                site_id=site_id,
            )
        self._aborted.add(txn_id)

    def note_stall(self) -> None:
        """The drive loop stalled: the scheduler drained with the scenario
        unfinished.  Called by the chaos runner when ``Cluster.run`` raises
        :class:`~repro.errors.SimulationError` — under chaos that is a
        liveness violation to report, not a crash."""
        self._stalled = True
        self.checks += 1
        self._flag(
            "liveness",
            "drive loop stalled: scheduler drained before the scenario "
            "finished (a protocol exchange is blocked forever)",
        )

    # -- quiescence audit ---------------------------------------------------

    def check_quiescence(self) -> list[ViolationRecord]:
        """Convergence audit once the run has drained; returns new findings.

        Only copies on *alive* sites are audited: a down site's volatile
        state is by definition lost, and its recovery protocol (cold flag
        on the type-1 announcement) re-locks whatever it held.
        """
        cluster = self.cluster
        before = len(self.violations)
        # Liveness: every submitted transaction must have completed.  Only
        # counted when it fires, so clean conservative-mode reports stay
        # byte-identical to those of earlier revisions.
        unfinished = sorted(self._submitted - self._finished)
        if unfinished:
            self.checks += 1
            self._flag(
                "liveness",
                f"{len(unfinished)} submitted transaction(s) never reached "
                f"commit or abort: {unfinished[:10]}"
                + ("..." if len(unfinished) > 10 else ""),
                txn_id=unfinished[0],
            )
        alive = [s for s in cluster.sites if s.alive]
        if not alive:
            return self.violations[before:]
        # Union of the tables of sites that consider themselves operational:
        # a single observer may have been falsely suspected down (a dropped
        # COMMIT looks like its failure) and missed the corrective type-2
        # announcement — but then some *other* operational table holds the
        # lock, so the union does too.
        observers = [s for s in alive if s.nsv.is_operational(s.site_id)] or alive
        union = FailLockTable(cluster.config.site_ids, cluster.catalog.item_ids)
        for observer in observers:
            union.merge(observer.faillocks.snapshot())

        for item in cluster.catalog.item_ids:
            holders = sorted(cluster.catalog.holders(item))
            alive_holders = [
                cluster.site(h) for h in holders if cluster.site(h).alive
            ]
            if not alive_holders:
                continue
            newest = max(s.db.version(item) for s in alive_holders)
            current: list[tuple[int, int]] = []
            for holder in alive_holders:
                self.checks += 1
                if union.is_locked(item, holder.site_id):
                    continue
                copy = holder.db.get(item)
                if copy.version != newest:
                    self._flag(
                        "convergence",
                        f"item {item}: site {holder.site_id} copy at "
                        f"v{copy.version} is not fail-locked but newest is "
                        f"v{newest}",
                        site_id=holder.site_id,
                        item_id=item,
                    )
                else:
                    current.append((holder.site_id, copy.value))
            if len({value for _site, value in current}) > 1:
                self.checks += 1
                detail = ", ".join(f"site {s}={v}" for s, v in current)
                self._flag(
                    "convergence",
                    f"item {item}: current copies disagree on value ({detail})",
                    item_id=item,
                )
        return self.violations[before:]

    def __repr__(self) -> str:
        return (
            f"InvariantAuditor(checks={self.checks}, "
            f"violations={len(self.violations)})"
        )
