"""The managing site (paper §1.2).

"We implemented a managing site to provide interactive control of system
actions.  It was used to cause sites to fail and recover and to initiate a
database transaction to a site."

Here the managing site runs a :class:`~repro.system.scenario.Scenario`:
before each transaction it applies the scheduled fail/recover/partition
actions, then generates the transaction, submits it to the coordinator the
submission policy picks, and — when the outcome comes back — records the
measurement row and samples the fail-lock tables (the instrumentation the
paper's figures are drawn from).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.core.control import FailureAnnouncement
from repro.errors import ConfigurationError, ProtocolError
from repro.metrics.collector import MetricsCollector
from repro.metrics.records import FailLockSample, TxnRecord
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.message import Message, MessageType
from repro.obs.events import EventKind
from repro.system.config import FailureDetection, SystemConfig
from repro.system.scenario import (
    Action,
    FailSite,
    HealNetwork,
    PartitionNetwork,
    RecoverSite,
    Scenario,
)
from repro.txn.transaction import AbortReason

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.system.cluster import Cluster


class ManagingSite(Endpoint):
    """Drives scenarios: failures, recoveries, and serial transactions."""

    def __init__(self, cluster: "Cluster") -> None:
        super().__init__(cluster.config.manager_id)
        self.cluster = cluster
        self.config: SystemConfig = cluster.config
        self.metrics: MetricsCollector = cluster.metrics
        self._rng = cluster.rng.stream("manager")
        self._scenario: Optional[Scenario] = None
        self._seq = 0               # 1-based sequence of the *next* txn
        self._next_txn_id = 0
        self._pending_actions: list[Action] = []
        self._waiting_recovery: Optional[int] = None
        self._in_flight_txn: Optional[int] = None
        self._txn_sizes: dict[int, int] = {}
        # The manager's own view of which sites it has failed/recovered.
        # Site objects flip their ``alive`` flag only when the MGR_FAIL /
        # MGR_RECOVER message is *delivered*, which is after the current
        # activation — so the manager must not read ``site.alive`` when
        # choosing a coordinator in the same breath as a failure action.
        self._believed_up: set[int] = set(self.config.site_ids)
        self.finished = False
        self.on_finish: Optional[Callable[[], None]] = None

    # -- public API ------------------------------------------------------------

    def run(self, scenario: Scenario) -> None:
        """Install ``scenario`` and kick off its first step."""
        scenario.validate()
        if self._scenario is not None and not self.finished:
            raise ConfigurationError("a scenario is already running")
        self._scenario = scenario
        self._seq = 1
        self.finished = False
        self.cluster.network.spawn(self, self._start_next_txn)

    @property
    def up_sites(self) -> list[int]:
        """Database sites the manager believes up, sorted."""
        return sorted(self._believed_up)

    # -- message handling ---------------------------------------------------------

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.mtype is MessageType.MGR_TXN_DONE:
            self._on_txn_done(ctx, msg)
        elif msg.mtype is MessageType.MGR_RECOVER_DONE:
            self._on_recover_done(ctx, msg)
        else:
            raise ProtocolError(f"managing site: unexpected message {msg}")

    # -- the serial drive loop -------------------------------------------------------

    def _start_next_txn(self, ctx: HandlerContext) -> None:
        """Apply this sequence number's actions, then submit the txn."""
        scenario = self._scenario
        assert scenario is not None
        if self._stop_reached():
            self._finish()
            return
        self._pending_actions = list(scenario.actions.get(self._seq, []))
        self._drain_actions(ctx)

    def _drain_actions(self, ctx: HandlerContext) -> None:
        """Run queued actions; pauses (returns) while a recovery is in
        flight and resumes from :meth:`_on_recover_done`."""
        while self._pending_actions:
            action = self._pending_actions.pop(0)
            if isinstance(action, FailSite):
                self._do_fail(ctx, action.site_id)
            elif isinstance(action, RecoverSite):
                self._do_recover(ctx, action.site_id)
                return  # resume when MGR_RECOVER_DONE arrives
            elif isinstance(action, PartitionNetwork):
                self.cluster.network.partitions.partition(
                    [list(group) for group in action.groups]
                )
            elif isinstance(action, HealNetwork):
                self.cluster.network.partitions.heal()
        self._submit(ctx)

    def _do_fail(self, ctx: HandlerContext, site_id: int) -> None:
        """Fail a site; under ANNOUNCED detection, also play the type-2
        announcer so survivors learn immediately (see DESIGN.md)."""
        ctx.send(site_id, MessageType.MGR_FAIL, {})
        self._believed_up.discard(site_id)
        if self.config.detection is FailureDetection.ANNOUNCED:
            announcement = FailureAnnouncement(
                announcer=self.site_id, failed_sites=[site_id]
            )
            for peer in self.up_sites:
                if peer != site_id:
                    ctx.send(
                        peer, MessageType.FAILURE_ANNOUNCE, announcement.to_payload()
                    )

    def _do_recover(self, ctx: HandlerContext, site_id: int) -> None:
        self._waiting_recovery = site_id
        ctx.send(site_id, MessageType.MGR_RECOVER, {})

    def _on_recover_done(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.payload.get("site") != self._waiting_recovery:
            return  # a recovery we did not initiate (or a duplicate)
        self._believed_up.add(msg.payload["site"])
        self._waiting_recovery = None
        self._drain_actions(ctx)

    def _submit(self, ctx: HandlerContext) -> None:
        scenario = self._scenario
        assert scenario is not None
        up = self.up_sites
        if not up:
            raise ProtocolError(
                f"no site is up to coordinate transaction {self._seq}"
            )
        coordinator = scenario.policy.choose(self._seq, up, self._rng)
        if coordinator not in up:
            raise ConfigurationError(
                f"policy chose down site {coordinator} for txn {self._seq}"
            )
        ops = scenario.workload.generate(self._seq, self._rng)
        self._next_txn_id += 1
        txn_id = self._next_txn_id
        self._in_flight_txn = txn_id
        self._txn_sizes[txn_id] = len(ops)
        obs = self.cluster.network.obs
        if obs.enabled:
            obs.emit(
                ctx.now,
                EventKind.TXN_SUBMIT,
                site=self.site_id,
                txn=txn_id,
                seq=self._seq,
                coordinator=coordinator,
            )
        ctx.charge(self.config.costs.manager_cost)
        ctx.send(
            coordinator,
            MessageType.MGR_SUBMIT_TXN,
            {"ops": [(op.kind, op.item_id) for op in ops], "coordinator": coordinator},
            txn_id=txn_id,
        )

    def _on_txn_done(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.txn_id != self._in_flight_txn:
            return  # a straggler from an aborted run
        self._in_flight_txn = None
        payload = msg.payload
        record = TxnRecord(
            txn_id=msg.txn_id,
            seq=self._seq,
            coordinator=msg.src,
            committed=payload["committed"],
            abort_reason=AbortReason(payload["reason"]),
            size=payload["size"],
            items_read=payload["items_read"],
            items_written=payload["items_written"],
            submitted_at=payload["submitted_at"],
            finished_at=ctx.now,
            coordinator_elapsed=payload["coordinator_elapsed"],
            participant_elapsed=self.metrics.pop_participants(msg.txn_id),
            copiers_requested=payload["copiers"],
            clear_notices_sent=payload["clear_notices"],
        )
        self.metrics.record_txn(record)
        self._sample_faillocks(ctx.now)
        self._seq += 1
        self._start_next_txn(ctx)

    def _sample_faillocks(self, time: float) -> None:
        """Record every site's fail-lock count, as seen by the best-informed
        table (the lowest-id operational site)."""
        observer = self.cluster.observer_site()
        if observer is None:
            return
        locks = {
            site: observer.faillocks.count_for(site)
            for site in self.config.site_ids
        }
        self.metrics.record_faillock_sample(
            FailLockSample(seq=self._seq, time=time, locks_per_site=locks)
        )

    # -- stopping -------------------------------------------------------------------

    def _stop_reached(self) -> bool:
        scenario = self._scenario
        assert scenario is not None
        done_count = self._seq - 1
        if done_count >= scenario.max_txns:
            return True
        if done_count < scenario.txn_count:
            return False
        if not scenario.until_recovered:
            return True
        observer = self.cluster.observer_site()
        if observer is None:
            return True
        return all(
            observer.faillocks.count_for(site) == 0
            for site in scenario.until_recovered
        )

    def _finish(self) -> None:
        self.finished = True
        if self.on_finish is not None:
            self.on_finish()

    def signature(self) -> tuple:
        """Hashable snapshot of drive-loop progress (``repro.check``)."""
        return (
            self._seq,
            self._next_txn_id,
            tuple(sorted(self._believed_up)),
            self._waiting_recovery,
            self._in_flight_txn,
            self.finished,
        )

    def __repr__(self) -> str:
        return (
            f"ManagingSite(next_seq={self._seq}, finished={self.finished}, "
            f"up={self.up_sites})"
        )
