"""Scenario scripting: the managing site's experiment scripts.

The paper's experiments are timelines of the form "before transaction N,
fail site k / bring site k up", plus a rule for where transactions are
submitted.  A :class:`Scenario` captures exactly that: per-sequence-number
actions, a submission policy, and stop conditions (a fixed count, possibly
extended "until site k is completely recovered" as in Experiment 2).
"""

from __future__ import annotations

import abc
from repro.sim.rng import RandomStream
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.workload.base import WorkloadGenerator


# -- actions ---------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class FailSite:
    """Cause ``site_id`` to fail (paper: a message telling the site to stop
    participating in any further system actions)."""

    site_id: int


@dataclass(slots=True, frozen=True)
class RecoverSite:
    """Initiate recovery of ``site_id`` (the type-1 control transaction
    runs before the next transaction is submitted)."""

    site_id: int


@dataclass(slots=True, frozen=True)
class PartitionNetwork:
    """Split the network into the given groups of sites."""

    groups: tuple[tuple[int, ...], ...]


@dataclass(slots=True, frozen=True)
class HealNetwork:
    """Remove any network partition."""


Action = FailSite | RecoverSite | PartitionNetwork | HealNetwork


# -- submission policies ------------------------------------------------------------


class SubmissionPolicy(abc.ABC):
    """Chooses the coordinating site for each transaction."""

    @abc.abstractmethod
    def choose(self, seq: int, up_sites: list[int], rng: RandomStream) -> int:
        """The coordinator for transaction ``seq`` among ``up_sites``."""


class FixedSite(SubmissionPolicy):
    """Always the same site (must be up)."""

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id

    def choose(self, seq: int, up_sites: list[int], rng: RandomStream) -> int:
        if self.site_id not in up_sites:
            raise ConfigurationError(
                f"fixed submission site {self.site_id} is down (txn {seq})"
            )
        return self.site_id


class RoundRobin(SubmissionPolicy):
    """Cycle through the currently-up sites."""

    def __init__(self) -> None:
        self._counter = 0

    def choose(self, seq: int, up_sites: list[int], rng: RandomStream) -> int:
        site = up_sites[self._counter % len(up_sites)]
        self._counter += 1
        return site


class UniformRandom(SubmissionPolicy):
    """Uniformly random among the currently-up sites."""

    def choose(self, seq: int, up_sites: list[int], rng: RandomStream) -> int:
        return rng.choice(up_sites)


class Weighted(SubmissionPolicy):
    """Random among up sites, weighted; weights renormalize over whoever is
    up (a down site's share flows to the survivors)."""

    def __init__(self, weights: dict[int, float]) -> None:
        if not weights or any(w < 0 for w in weights.values()):
            raise ConfigurationError(f"bad weights: {weights}")
        self.weights = dict(weights)

    def choose(self, seq: int, up_sites: list[int], rng: RandomStream) -> int:
        eligible = [s for s in up_sites if self.weights.get(s, 0.0) > 0.0]
        if not eligible:
            eligible = list(up_sites)
            live_weights = [1.0] * len(eligible)
        else:
            live_weights = [self.weights[s] for s in eligible]
        total = sum(live_weights)
        point = rng.random() * total
        acc = 0.0
        for site, weight in zip(eligible, live_weights):
            acc += weight
            if point <= acc:
                return site
        return eligible[-1]


# -- the scenario -------------------------------------------------------------------


@dataclass(slots=True)
class Scenario:
    """A complete experiment script.

    ``actions[n]`` runs *before* transaction ``n`` (1-based), matching the
    paper's "Before transaction 101, site 0 was brought up".
    """

    workload: WorkloadGenerator
    txn_count: int
    policy: SubmissionPolicy = field(default_factory=UniformRandom)
    actions: dict[int, list[Action]] = field(default_factory=dict)
    # After txn_count, keep going until these sites have no fail-locks
    # (Experiment 2 ran "until the recovering site had completely
    # recovered").  Empty means stop exactly at txn_count.
    until_recovered: tuple[int, ...] = ()
    max_txns: int = 100_000

    def add_action(self, before_txn: int, action: Action) -> "Scenario":
        """Register ``action`` to run before transaction ``before_txn``."""
        if before_txn < 1:
            raise ConfigurationError(f"before_txn must be >= 1: {before_txn}")
        self.actions.setdefault(before_txn, []).append(action)
        return self

    def validate(self) -> None:
        if self.txn_count < 0:
            raise ConfigurationError(f"txn_count must be >= 0: {self.txn_count}")
        if self.max_txns < self.txn_count:
            raise ConfigurationError(
                f"max_txns ({self.max_txns}) < txn_count ({self.txn_count})"
            )
