"""Cluster assembly and run driver — "mini-RAID in a box".

:class:`Cluster` wires the whole system together from a
:class:`~repro.system.config.SystemConfig`: scheduler, CPU bank, network,
replication catalog, database sites, and the managing site.  Its
:meth:`run` executes a scenario to completion and returns the metrics.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collector import MetricsCollector
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.site.site import DatabaseSite
from repro.sim.cpu import CpuResource
from repro.sim.logical import LogicalClock
from repro.sim.rng import DeterministicRng
from repro.sim.scheduler import EventScheduler
from repro.storage.catalog import ReplicationCatalog
from repro.system.config import SystemConfig
from repro.system.managing import ManagingSite
from repro.system.scenario import Scenario


class Cluster:
    """A fully wired mini-RAID system."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        catalog: Optional[ReplicationCatalog] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.config.validate()
        self.scheduler = EventScheduler()
        self.cpu = CpuResource(self.scheduler, cores=self.config.cores)
        self.rng = DeterministicRng(self.config.seed)
        # Callers may inject a collector wired to a streaming sink (soak
        # runs); the default retains exact per-transaction records.
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.network = Network(
            scheduler=self.scheduler,
            cpu=self.cpu,
            rng=self.rng,
            latency_model=ConstantLatency(self.config.wire_latency_ms),
            msg_send_cost=self.config.costs.msg_send_cost,
            msg_recv_cost=self.config.costs.msg_recv_cost,
            failure_detect_delay=self.config.failure_detect_delay_ms,
        )
        if self.config.reliable_delivery:
            from repro.net.reliable import ReliableDelivery

            self.network.reliable = ReliableDelivery(
                self.network, self.config.retransmit_policy()
            )
        self.catalog = (
            catalog
            if catalog is not None
            else ReplicationCatalog.fully_replicated(
                self.config.item_ids, self.config.site_ids
            )
        )
        self.version_clock = LogicalClock()
        self.sites: list[DatabaseSite] = []
        for site_id in self.config.site_ids:
            site = DatabaseSite(
                site_id,
                self.config,
                self.catalog,
                self.metrics,
                version_clock=self.version_clock,
            )
            site.attach(self.network)
            self.sites.append(site)
        self.manager = ManagingSite(self)
        self.network.register(self.manager)
        self.network.partition_exempt.add(self.manager.site_id)

    # -- convenience access --------------------------------------------------------

    def site(self, site_id: int) -> DatabaseSite:
        """The database site with id ``site_id``."""
        try:
            return self.sites[site_id]
        except IndexError:
            raise ConfigurationError(f"no site {site_id}") from None

    @property
    def obs(self):
        """The run's trace sink (repro.obs) — disabled until you set
        ``cluster.obs.enabled = True`` before :meth:`run`."""
        return self.network.obs

    def observer_site(self) -> Optional[DatabaseSite]:
        """The lowest-id operational site (best-informed fail-lock table)."""
        for site in self.sites:
            if site.alive:
                return site
        return None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.scheduler.now

    def install_probe(self, probe) -> None:
        """Attach an audit probe to every site and the network.

        ``probe`` must provide ``on_commit_applied(site, txn_id, items,
        recipients)``, ``on_coordinator_abort(site_id, txn_id, reason)`` and
        ``on_message(msg)`` — the hooks
        :class:`~repro.chaos.invariants.InvariantAuditor` implements.
        """
        for site in self.sites:
            site.probe = probe
        self.network.delivery_probes.append(probe.on_message)

    # -- running --------------------------------------------------------------------

    def run(self, scenario: Scenario, max_events: int = 50_000_000) -> MetricsCollector:
        """Run ``scenario`` to completion; returns the metrics collector."""
        self.manager.run(scenario)
        self.scheduler.run(max_events=max_events)
        if not self.manager.finished:
            raise SimulationError(
                "scheduler drained before the scenario finished — "
                "a protocol exchange stalled"
            )
        return self.metrics

    # -- consistency auditing (the invariant Experiment 3 is about) -------------------

    def audit_consistency(self) -> list[str]:
        """Check the replicated-copy-control invariant; returns violations.

        For every item: every copy *not* fail-locked (per the best-informed
        operational table) must carry the globally newest version, and all
        such copies must agree on the value.  An empty list means the
        database is consistent in the paper's sense — fail-locks exactly
        track which copies are out of date.
        """
        problems: list[str] = []
        observer = self.observer_site()
        if observer is None:
            return ["no operational site to audit from"]
        table = observer.faillocks
        for item in self.catalog.item_ids:
            newest = max(
                self.site(s).db.version(item) for s in self.catalog.holders(item)
            )
            for site_id in sorted(self.catalog.holders(item)):
                copy = self.site(site_id).db.get(item)
                locked = table.is_locked(item, site_id)
                if not locked and copy.version != newest:
                    problems.append(
                        f"item {item}: site {site_id} copy v{copy.version} is not "
                        f"fail-locked but newest is v{newest}"
                    )
        return problems

    def faillock_counts(self) -> dict[int, int]:
        """Current fail-locks per site, from the best-informed table."""
        observer = self.observer_site()
        if observer is None:
            return {site: 0 for site in self.config.site_ids}
        return {
            site: observer.faillocks.count_for(site)
            for site in self.config.site_ids
        }

    def __repr__(self) -> str:
        return (
            f"Cluster(sites={len(self.sites)}, items={self.config.db_size}, "
            f"now={self.now:.1f}ms)"
        )
