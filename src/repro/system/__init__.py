"""System assembly: configuration, cost model, managing site, cluster."""

from repro.system.config import (
    SystemConfig,
    FailureDetection,
    ClearNoticeMode,
    CopyControlStrategy,
)
from repro.system.costs import CostModel
from repro.system.cluster import Cluster
from repro.system.managing import ManagingSite
from repro.system.scenario import (
    Scenario,
    FailSite,
    RecoverSite,
    PartitionNetwork,
    HealNetwork,
    SubmissionPolicy,
    FixedSite,
    RoundRobin,
    UniformRandom,
    Weighted,
)
from repro.system.deadlock import GlobalDeadlockDetector
from repro.system.openloop import OpenLoopManager, OpenLoopResult, run_open_loop
from repro.system.interactive import InteractiveDriver

__all__ = [
    "SystemConfig",
    "FailureDetection",
    "ClearNoticeMode",
    "CopyControlStrategy",
    "CostModel",
    "Cluster",
    "ManagingSite",
    "Scenario",
    "FailSite",
    "RecoverSite",
    "PartitionNetwork",
    "HealNetwork",
    "SubmissionPolicy",
    "FixedSite",
    "RoundRobin",
    "UniformRandom",
    "Weighted",
    "GlobalDeadlockDetector",
    "OpenLoopManager",
    "OpenLoopResult",
    "run_open_loop",
    "InteractiveDriver",
]
