"""The processing-cost model, calibrated to the paper's Experiment 1.

Mini-RAID ran all sites as processes on one processor, so every measured
time is CPU work serialized on that processor; the paper reports 9 ms per
inter-site communication.  Every constant below is a simulated-millisecond
CPU charge.  The defaults are calibrated so that, with the paper's
configuration (database of 50 items, 4 sites, maximum transaction size 10),
the Experiment 1 measurements come out close to the published values:

=============================================  ======== =========
measurement                                    paper    model aim
=============================================  ======== =========
coordinator time, fail-locks code removed      176 ms   ±20 %
coordinator time, fail-locks code included     186 ms   ±20 %
participant time, fail-locks code removed       90 ms   ±20 %
participant time, fail-locks code included      97 ms   ±20 %
type-1 control txn at recovering site          190 ms   ±20 %
type-1 control txn at operational site          50 ms   ±20 %
type-2 control txn                              68 ms   ±20 %
database txn including one copier              270 ms   ±20 %
copy-request overhead at the responder          25 ms   ±20 %
clear-fail-locks transaction (per site)         20 ms   ±20 %
=============================================  ======== =========

As the paper itself stresses, "the comparison of average times is of more
interest than the numerical value of each average time" — the reproduction
target is the *ratios* (≈ +6 % for fail-lock maintenance, ≈ +45 % for a
copier, of which ≈ 30 percentage points are the clear-fail-locks special
transactions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-action CPU charges in simulated milliseconds."""

    # One inter-site communication = send + receive = 9 ms (paper §2.1).
    msg_send_cost: float = 4.5
    msg_recv_cost: float = 4.5

    # Database transaction processing.
    txn_base_cost: float = 2.0          # parse/setup on reception
    op_execute_cost: float = 7.8        # per operation at the coordinator
    write_stage_cost: float = 1.3       # per item buffered in phase 1
    commit_apply_cost: float = 1.3      # per item applied at commit

    # Fail-lock maintenance (§2.2.1): per written item, per site bit.
    faillock_bit_cost: float = 0.25

    # Control transaction type 1 (§2.2.2).
    control1_begin_cost: float = 2.0            # recovering site sets up
    control1_announce_cost: float = 1.0         # peer updates its NSV
    control1_format_base_cost: float = 5.0      # responder builds the reply
    control1_format_item_cost: float = 0.72     # ... per database item
    control1_install_base_cost: float = 10.0    # recovering site installs
    control1_install_item_cost: float = 2.0     # ... per database item

    # Control transaction type 2 (§2.2.2): 9 ms communication + update.
    control2_update_cost: float = 59.0

    # Copier transactions (§2.2.3).
    copy_request_cost: float = 2.0          # coordinator formats COPY_REQ
    copy_response_base_cost: float = 14.0   # responder formats the copies
    copy_response_item_cost: float = 2.0
    copy_install_cost: float = 2.0          # per installed copy
    clear_notice_format_cost: float = 1.0   # per CLEAR_FAILLOCKS message
    clear_notice_apply_cost: float = 11.0   # peer clears the bits

    # Parallel recovery (repro.recovery): one partition-planning pass —
    # the recovering site shards its stale set across donors.
    recovery_plan_cost: float = 2.0

    # Control transaction type 3 (extension; §3.2 proposal).
    create_copy_cost: float = 5.0
    drop_copy_cost: float = 2.0

    # Concurrency-control extension ("complete RAID" mode).
    lock_request_cost: float = 0.2
    lock_release_cost: float = 0.2

    # Managing site bookkeeping (kept off the measured paths).
    manager_cost: float = 0.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"cost {name} must be non-negative")

    @property
    def communication_cost(self) -> float:
        """End-to-end cost of one inter-site message (paper: 9 ms)."""
        return self.msg_send_cost + self.msg_recv_cost

    def control1_format_cost(self, db_size: int) -> float:
        """Responder's cost to format the type-1 reply (grows with the
        database, as §2.2.2 notes)."""
        return self.control1_format_base_cost + self.control1_format_item_cost * db_size

    def control1_install_cost(self, db_size: int) -> float:
        """Recovering site's cost to install the shipped state."""
        return self.control1_install_base_cost + self.control1_install_item_cost * db_size

    def copy_response_cost(self, item_count: int) -> float:
        """Responder's cost to format a COPY_RESP."""
        return self.copy_response_base_cost + self.copy_response_item_cost * item_count

    def faillock_maintenance_cost(self, written_items: int, num_sites: int) -> float:
        """Commit-time fail-lock maintenance at one site."""
        return self.faillock_bit_cost * written_items * num_sites

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly scaled copy (sensitivity studies)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative: {factor}")
        return replace(
            self,
            **{
                name: getattr(self, name) * factor
                for name in self.__dataclass_fields__
            },
        )

    @classmethod
    def free(cls) -> "CostModel":
        """All-zero costs: logical protocol checks with no timing."""
        return cls(
            **{name: 0.0 for name in cls.__dataclass_fields__}  # type: ignore[arg-type]
        )
