"""System configuration.

Mirrors the parameters the paper's managing site exposed (§1.2): database
size (number of frequently-referenced items), number of database sites, and
maximum operations per transaction — plus the knobs this reproduction adds
for the ablations and extensions the paper discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.recovery import RecoveryPolicy
from repro.system.costs import CostModel


class FailureDetection(enum.Enum):
    """How surviving sites learn about a failure.

    ``ANNOUNCED``: failing a site immediately triggers a type-2 control
    transaction to the survivors (the managing-site behaviour implied by
    the paper's scenarios, which show no detection-related aborts).

    ``TIMEOUT``: survivors only find out when a message to the failed site
    goes unanswered; the in-flight transaction aborts and the discoverer
    runs the type-2 control transaction (Appendix A, taken literally).
    """

    ANNOUNCED = "announced"
    TIMEOUT = "timeout"


class ClearNoticeMode(enum.Enum):
    """How copier-cleared fail-locks are propagated to other sites.

    ``SPECIAL_TXN``: a dedicated CLEAR_FAILLOCKS message per operational
    site (the paper's measured implementation, ≈20 ms each).

    ``EMBEDDED``: the clears ride inside the phase-1 copy updates — the
    optimization §2.2.3 suggests "could significantly reduce this
    overhead".
    """

    SPECIAL_TXN = "special_txn"
    EMBEDDED = "embedded"


class CopyControlStrategy(enum.Enum):
    """Replicated-copy-control strategy run by the cluster."""

    ROWAA = "rowaa"     # the paper's protocol
    ROWA = "rowa"       # strict read-one/write-ALL: any down site blocks writes
    QUORUM = "quorum"   # majority quorum consensus (El Abbadi et al. family)


@dataclass(slots=True)
class SystemConfig:
    """Every knob of a cluster run.  Defaults are the paper's Experiment 1
    configuration (db=50, sites=4, max transaction size=10)."""

    db_size: int = 50
    num_sites: int = 4
    max_txn_size: int = 10
    write_probability: float = 0.5
    seed: int = 42

    faillocks_enabled: bool = True
    detection: FailureDetection = FailureDetection.ANNOUNCED
    clear_notice_mode: ClearNoticeMode = ClearNoticeMode.SPECIAL_TXN
    strategy: CopyControlStrategy = CopyControlStrategy.ROWAA

    recovery_policy: RecoveryPolicy = RecoveryPolicy.ON_DEMAND
    batch_threshold: float = 0.2
    batch_size: int = 5

    # Donor spreading for on-demand / two-step copiers: pick each item's
    # copier source round-robin among all up-to-date donors (by item id)
    # instead of always the lowest.  Off by default so committed seeds
    # replay byte-identically.  The PARALLEL policy always spreads.
    spread_copier_sources: bool = False
    # PARALLEL policy: maximum donors addressed concurrently during one
    # fan-out round (0 = every eligible donor).
    recovery_fanout: int = 0

    # "Complete RAID" extension: strict 2PL at every site with global
    # deadlock detection, enabling concurrent (open-loop) transaction
    # streams.  Off for all paper reproductions (mini-RAID was serial).
    concurrency_control: bool = False

    # Crash model.  Mini-RAID "failed" sites kept their process memory, so
    # recovery starts from the last pre-crash state (warm).  With
    # ``cold_recovery`` a failure wipes the site's volatile database; on
    # recovery every one of its copies is fail-locked and must be
    # refreshed — the harder crash model real systems face.
    cold_recovery: bool = False

    # Timing substrate.  ``cores=1`` reproduces mini-RAID's single
    # processor; ``cores >= num_sites + 1`` with nonzero wire latency
    # approximates the "complete RAID" multi-machine deployment.
    costs: CostModel = field(default_factory=CostModel)
    cores: int = 1
    wire_latency_ms: float = 0.0
    failure_detect_delay_ms: float = 0.0

    # Reliable-delivery sublayer (repro.net.reliable): per-channel
    # sequence numbers, receiver-side dedup/ordering, ack-tracked
    # retransmission with exponential backoff.  Off by default — the stock
    # network already is the paper's reliable FIFO transport, and leaving
    # the layer out keeps existing seeds byte-identical.  Required for any
    # fault mode that drops messages silently (chaos ``lossy_core``).
    reliable_delivery: bool = False
    net_rto_ms: float = 60.0
    net_rto_backoff: float = 2.0
    net_rto_max_ms: float = 480.0
    net_max_retries: int = 8

    # Protocol-level timeouts (2PC termination).  Off by default for the
    # same byte-identical-replay reason.  When enabled: a coordinator that
    # waits longer than ``vote_timeout_ms`` for phase-1 acks aborts the
    # transaction; one that waits longer than ``commit_retry_ms`` for
    # phase-2 acks re-sends the COMMIT, up to ``commit_max_retries`` times
    # before treating the silent participants as failed; a participant
    # holding staged updates longer than ``status_inquiry_ms`` runs the
    # TXN_STATUS_REQ cooperative-termination inquiry.
    timeouts_enabled: bool = False
    vote_timeout_ms: float = 400.0
    commit_retry_ms: float = 400.0
    commit_max_retries: int = 10
    status_inquiry_ms: float = 900.0

    # The managing site's address is one past the last database site.
    @property
    def site_ids(self) -> list[int]:
        """Database site ids: 0 .. num_sites-1 (as in the paper)."""
        return list(range(self.num_sites))

    @property
    def manager_id(self) -> int:
        """The managing site's address."""
        return self.num_sites

    @property
    def item_ids(self) -> list[int]:
        """Data item ids: 0 .. db_size-1."""
        return list(range(self.db_size))

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any bad value."""
        if self.db_size < 1:
            raise ConfigurationError(f"db_size must be >= 1: {self.db_size}")
        if self.num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1: {self.num_sites}")
        if self.max_txn_size < 1:
            raise ConfigurationError(f"max_txn_size must be >= 1: {self.max_txn_size}")
        if not 0.0 <= self.write_probability <= 1.0:
            raise ConfigurationError(
                f"write_probability must be in [0, 1]: {self.write_probability}"
            )
        if not 0.0 <= self.batch_threshold <= 1.0:
            raise ConfigurationError(
                f"batch_threshold must be in [0, 1]: {self.batch_threshold}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1: {self.batch_size}")
        if self.recovery_fanout < 0:
            raise ConfigurationError(
                f"recovery_fanout must be non-negative: {self.recovery_fanout}"
            )
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1: {self.cores}")
        if self.wire_latency_ms < 0:
            raise ConfigurationError(
                f"wire_latency_ms must be non-negative: {self.wire_latency_ms}"
            )
        if self.failure_detect_delay_ms < 0:
            raise ConfigurationError(
                f"failure_detect_delay_ms must be non-negative: "
                f"{self.failure_detect_delay_ms}"
            )
        for name in ("vote_timeout_ms", "commit_retry_ms", "status_inquiry_ms"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive: {getattr(self, name)}"
                )
        if self.commit_max_retries < 1:
            raise ConfigurationError(
                f"commit_max_retries must be >= 1: {self.commit_max_retries}"
            )
        self.retransmit_policy().validate()

    def retransmit_policy(self):
        """The :class:`~repro.net.reliable.RetransmitPolicy` these knobs
        describe (used by the cluster builder when ``reliable_delivery``)."""
        from repro.net.reliable import RetransmitPolicy

        return RetransmitPolicy(
            rto_ms=self.net_rto_ms,
            backoff=self.net_rto_backoff,
            rto_max_ms=self.net_rto_max_ms,
            max_retries=self.net_max_retries,
        )

    @classmethod
    def paper_experiment1(cls, **overrides) -> "SystemConfig":
        """The §2.2 configuration: db=50, sites=4, max txn size=10."""
        return cls(db_size=50, num_sites=4, max_txn_size=10, **overrides)

    @classmethod
    def paper_experiment2(cls, **overrides) -> "SystemConfig":
        """The §3.1.1 configuration: db=50, sites=2, max txn size=5."""
        return cls(db_size=50, num_sites=2, max_txn_size=5, **overrides)

    @classmethod
    def paper_experiment3_scenario2(cls, **overrides) -> "SystemConfig":
        """The §4.2.2 configuration: db=50, sites=4, max txn size=5."""
        return cls(db_size=50, num_sites=4, max_txn_size=5, **overrides)
