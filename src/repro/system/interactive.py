"""Step-at-a-time driving of a cluster (the console's engine).

The paper's managing site "provide[d] interactive control of system
actions ... to cause sites to fail and recover and to initiate a database
transaction to a site".  :class:`InteractiveDriver` is that control
surface as an API: each call injects one action and runs the simulator to
quiescence, so a human (via :mod:`repro.console`) or a test can poke the
system one step at a time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.metrics.records import FailLockSample, TxnRecord
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.message import Message, MessageType
from repro.system.cluster import Cluster
from repro.system.config import FailureDetection, SystemConfig
from repro.core.control import FailureAnnouncement
from repro.txn.operations import Operation
from repro.txn.transaction import AbortReason
from repro.workload.base import WorkloadGenerator
from repro.workload.uniform import UniformWorkload


class InteractiveDriver(Endpoint):
    """A managing site driven one action at a time."""

    def __init__(self, cluster: Cluster, workload: Optional[WorkloadGenerator] = None):
        super().__init__(cluster.config.manager_id)
        self.cluster = cluster
        self.config = cluster.config
        self.metrics = cluster.metrics
        self.workload = workload if workload is not None else UniformWorkload(
            cluster.config.item_ids, cluster.config.max_txn_size
        )
        self._rng = cluster.rng.stream("interactive")
        self._believed_up = set(cluster.config.site_ids)
        self._next_txn_id = 0
        self._seq = 0
        self._last_outcome: Optional[TxnRecord] = None
        self._recovery_done: Optional[int] = None
        cluster.network.replace_endpoint(self)

    @classmethod
    def build(
        cls,
        db_size: int = 50,
        num_sites: int = 4,
        max_txn_size: int = 10,
        seed: int = 42,
    ) -> "InteractiveDriver":
        """Convenience: a fresh cluster with the given shape."""
        config = SystemConfig(
            db_size=db_size, num_sites=num_sites, max_txn_size=max_txn_size, seed=seed
        )
        return cls(Cluster(config))

    # -- endpoint ------------------------------------------------------------

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.mtype is MessageType.MGR_TXN_DONE:
            payload = msg.payload
            self._seq += 1
            record = TxnRecord(
                txn_id=msg.txn_id,
                seq=self._seq,
                coordinator=msg.src,
                committed=payload["committed"],
                abort_reason=AbortReason(payload["reason"]),
                size=payload["size"],
                items_read=payload["items_read"],
                items_written=payload["items_written"],
                submitted_at=payload["submitted_at"],
                finished_at=ctx.now,
                coordinator_elapsed=payload["coordinator_elapsed"],
                participant_elapsed=self.metrics.pop_participants(msg.txn_id),
                copiers_requested=payload["copiers"],
                clear_notices_sent=payload["clear_notices"],
            )
            self.metrics.record_txn(record)
            self._sample(ctx.now)
            self._last_outcome = record
        elif msg.mtype is MessageType.MGR_RECOVER_DONE:
            self._recovery_done = msg.payload.get("site")
        else:
            raise ProtocolError(f"interactive driver: unexpected message {msg}")

    def _sample(self, time: float) -> None:
        observer = self.cluster.observer_site()
        if observer is None:
            return
        self.metrics.record_faillock_sample(
            FailLockSample(
                seq=self._seq,
                time=time,
                locks_per_site={
                    s: observer.faillocks.count_for(s)
                    for s in self.config.site_ids
                },
            )
        )

    # -- actions -----------------------------------------------------------------

    @property
    def up_sites(self) -> list[int]:
        """Sites the driver believes up, sorted."""
        return sorted(self._believed_up)

    def submit_txn(
        self, site: Optional[int] = None, ops: Optional[list[Operation]] = None
    ) -> TxnRecord:
        """Submit one transaction and run it to completion."""
        if not self._believed_up:
            raise ConfigurationError("no site is up")
        if site is None:
            site = self._rng.choice(self.up_sites)
        if site not in self._believed_up:
            raise ConfigurationError(f"site {site} is down")
        if ops is None:
            ops = self.workload.generate(self._seq + 1, self._rng)
        self._next_txn_id += 1
        txn_id = self._next_txn_id
        self._last_outcome = None

        def go(ctx: HandlerContext) -> None:
            ctx.send(
                site,
                MessageType.MGR_SUBMIT_TXN,
                {"ops": [(op.kind, op.item_id) for op in ops]},
                txn_id=txn_id,
            )

        self.cluster.network.spawn(self, go)
        self.cluster.scheduler.run()
        if self._last_outcome is None:
            raise ProtocolError(f"transaction {txn_id} never completed")
        return self._last_outcome

    def run_txns(self, count: int) -> list[TxnRecord]:
        """Submit ``count`` transactions serially."""
        return [self.submit_txn() for _ in range(count)]

    def fail_site(self, site: int) -> None:
        """Fail ``site`` (announced to survivors, as the paper's managing
        site effectively did)."""
        if site not in self._believed_up:
            raise ConfigurationError(f"site {site} is already down")
        self._believed_up.discard(site)

        def go(ctx: HandlerContext) -> None:
            ctx.send(site, MessageType.MGR_FAIL, {})
            if self.config.detection is FailureDetection.ANNOUNCED:
                announcement = FailureAnnouncement(
                    announcer=self.site_id, failed_sites=[site]
                )
                for peer in self.up_sites:
                    ctx.send(
                        peer, MessageType.FAILURE_ANNOUNCE, announcement.to_payload()
                    )

        self.cluster.network.spawn(self, go)
        self.cluster.scheduler.run()

    def recover_site(self, site: int) -> None:
        """Recover ``site`` (runs the type-1 control transaction)."""
        if site in self._believed_up:
            raise ConfigurationError(f"site {site} is already up")
        self._recovery_done = None
        self.cluster.network.spawn(
            self, lambda ctx: ctx.send(site, MessageType.MGR_RECOVER, {})
        )
        self.cluster.scheduler.run()
        if self._recovery_done != site:
            raise ProtocolError(f"site {site} recovery did not complete")
        self._believed_up.add(site)

    # -- inspection ------------------------------------------------------------------

    def status(self) -> list[dict]:
        """One row per site: alive, session, stale copies."""
        counts = self.cluster.faillock_counts()
        return [
            {
                "site": s.site_id,
                "alive": s.alive,
                "session": s.nsv.my_session,
                "stale": counts[s.site_id],
            }
            for s in self.cluster.sites
        ]

    def chart(self) -> str:
        """ASCII chart of the fail-lock history so far."""
        from repro.viz.ascii_chart import render_series

        series = {
            f"site {s}": [
                (float(x), float(y)) for x, y in self.metrics.faillock_series(s)
            ]
            for s in self.config.site_ids
        }
        return render_series(series, title="fail-locks so far")
