"""Global deadlock detection service for the concurrent mode.

Every blocked lock request anywhere in the cluster reports its waits-for
edges here; the detector looks for a cycle eagerly on each report and
aborts the youngest transaction in it (the conventional cheap victim).
This models the centralized-detector option of 1980s distributed DBMSs —
the complete RAID design the paper defers to.

A transaction can be blocked at several sites at once (its phase-one copy
updates queue independently per participant), so waits are keyed by
``(waiter, site)`` and the global graph is the union over sites.
"""

from __future__ import annotations

from typing import Callable

from repro.net.endpoint import HandlerContext
from repro.txn.deadlock import WaitsForGraph, find_cycle_in


class GlobalDeadlockDetector:
    """Cluster-wide waits-for bookkeeping plus victim-abort dispatch."""

    __slots__ = (
        "_waits",
        "_union",
        "_abort_fns",
        "_dirty",
        "deadlocks_found",
        "victims",
    )

    def __init__(self) -> None:
        # waiter -> site -> blockers at that site.
        self._waits: dict[int, dict[int, tuple[int, ...]]] = {}
        # waiter -> union of its blockers across sites, maintained
        # incrementally so detection never rebuilds the whole graph.
        self._union: dict[int, set[int]] = {}
        # txn -> callable(ctx) that aborts the transaction at its
        # coordinator; registered when the coordinator starts the txn.
        self._abort_fns: dict[int, Callable[[HandlerContext], None]] = {}
        # True when the last detection aborted a victim: a second,
        # disjoint cycle may have survived (the detector reports at most
        # one cycle per block), so the next detection must scan globally.
        self._dirty = False
        self.deadlocks_found = 0
        self.victims: list[int] = []

    # -- registration ---------------------------------------------------------

    def register(self, txn_id: int, abort_fn: Callable[[HandlerContext], None]) -> None:
        """The coordinator of ``txn_id`` registers its abort hook."""
        self._abort_fns[txn_id] = abort_fn

    def forget(self, txn_id: int) -> None:
        """A transaction finished (commit or abort): drop all its state."""
        self._waits.pop(txn_id, None)
        self._union.pop(txn_id, None)
        self._abort_fns.pop(txn_id, None)

    # -- wait bookkeeping ----------------------------------------------------------

    def _reunion(self, waiter: int, sites: dict[int, tuple[int, ...]]) -> None:
        union: set[int] = set()
        for blockers in sites.values():
            union.update(blockers)
        self._union[waiter] = union

    def block(
        self,
        ctx: HandlerContext,
        site_id: int,
        waiter: int,
        blockers: tuple[int, ...],
    ) -> None:
        """Record that ``waiter`` is blocked at ``site_id``; detect."""
        real = tuple(b for b in blockers if b != waiter)
        if not real:
            return
        sites = self._waits.get(waiter)
        if sites is None:
            sites = self._waits[waiter] = {}
        sites[site_id] = real
        self._reunion(waiter, sites)
        self._detect(ctx, waiter)

    def unblock(self, site_id: int, waiter: int) -> None:
        """``waiter`` stopped waiting at ``site_id`` (other sites may still
        hold it blocked)."""
        sites = self._waits.get(waiter)
        if sites is not None:
            sites.pop(site_id, None)
            if not sites:
                del self._waits[waiter]
                self._union.pop(waiter, None)
            else:
                self._reunion(waiter, sites)

    def edges(self) -> list[tuple[int, int]]:
        """The current global waits-for edges, sorted."""
        out = set()
        for waiter, sites in self._waits.items():
            for blockers in sites.values():
                for blocker in blockers:
                    out.add((waiter, blocker))
        return sorted(out)

    # -- detection -----------------------------------------------------------------

    def _detect(self, ctx: HandlerContext, waiter: int) -> None:
        # Cheap existence test first; only a genuine cycle pays for the
        # deterministic full-graph DFS whose traversal order fixes which
        # cycle is reported and which victim dies.  The DFS runs directly
        # over the incrementally-maintained union adjacency — detection
        # never materializes a graph object.
        edges = self._union
        was_dirty = self._dirty
        if was_dirty:
            # Existence first, order-sensitive traversal only on a hit:
            # whether a cycle exists is traversal-order independent, so
            # the boolean check can skip the sorted() calls that make
            # ``find_cycle_in`` deterministic.  Only a genuine cycle pays
            # for the deterministic DFS that fixes which cycle is
            # reported and which victim dies.
            if not self._has_cycle(edges):
                self._dirty = False
                return
            cycle = find_cycle_in(edges)
        else:
            if not self._reaches(edges, waiter):
                # The graph was acyclic before this block(), so any new
                # cycle passes through ``waiter``; none does.
                return
            cycle = find_cycle_in(edges)
            if not cycle:
                return
        self.deadlocks_found += 1
        victim = WaitsForGraph.choose_victim(cycle)
        self.victims.append(victim)
        abort_fn = self._abort_fns.get(victim)
        self.forget(victim)
        # Breaking one cycle may leave another; rescan globally next time.
        # Exception: on the clean path every cycle ran through ``waiter``
        # (the graph was acyclic before this block), so aborting the
        # waiter itself severs all of them — no rescan needed.  Victims
        # are the youngest txn in the cycle and the latest blocker is
        # often exactly that, so this skips most global scans.
        self._dirty = was_dirty or victim != waiter
        if abort_fn is not None:
            abort_fn(ctx)

    @staticmethod
    def _has_cycle(edges: dict[int, set[int]]) -> bool:
        """Whether any cycle exists (pure existence check — traversal
        order never leaks into the result, so no sorting is needed)."""
        GREY, BLACK = 1, 2
        colour: dict[int, int] = {}
        colour_get = colour.get
        edges_get = edges.get
        for start in edges:
            if start in colour:
                continue
            colour[start] = GREY
            stack = [(start, iter(edges[start]))]
            while stack:
                node, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    seen = colour_get(nxt)
                    if seen == GREY:
                        return True
                    if seen is None:
                        out = edges_get(nxt)
                        if out:
                            colour[nxt] = GREY
                            stack.append((nxt, iter(out)))
                            advanced = True
                            break
                        colour[nxt] = BLACK
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return False

    @staticmethod
    def _reaches(edges: dict[int, set[int]], waiter: int) -> bool:
        """Whether ``waiter`` can reach itself (pure existence check —
        traversal order never leaks into the result)."""
        stack = list(edges.get(waiter, ()))
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == waiter:
                return True
            if node in seen:
                continue
            seen.add(node)
            nxt = edges.get(node)
            if nxt:
                stack.extend(nxt)
        return False

    def __repr__(self) -> str:
        return (
            f"GlobalDeadlockDetector(found={self.deadlocks_found}, "
            f"victims={self.victims}, waiting={sorted(self._waits)})"
        )
