"""Global deadlock detection service for the concurrent mode.

Every blocked lock request anywhere in the cluster reports its waits-for
edges here; the detector looks for a cycle eagerly on each report and
aborts the youngest transaction in it (the conventional cheap victim).
This models the centralized-detector option of 1980s distributed DBMSs —
the complete RAID design the paper defers to.

A transaction can be blocked at several sites at once (its phase-one copy
updates queue independently per participant), so waits are keyed by
``(waiter, site)`` and the global graph is the union over sites.
"""

from __future__ import annotations

from typing import Callable

from repro.net.endpoint import HandlerContext
from repro.txn.deadlock import WaitsForGraph


class GlobalDeadlockDetector:
    """Cluster-wide waits-for bookkeeping plus victim-abort dispatch."""

    def __init__(self) -> None:
        # waiter -> site -> blockers at that site.
        self._waits: dict[int, dict[int, tuple[int, ...]]] = {}
        # txn -> callable(ctx) that aborts the transaction at its
        # coordinator; registered when the coordinator starts the txn.
        self._abort_fns: dict[int, Callable[[HandlerContext], None]] = {}
        self.deadlocks_found = 0
        self.victims: list[int] = []

    # -- registration ---------------------------------------------------------

    def register(self, txn_id: int, abort_fn: Callable[[HandlerContext], None]) -> None:
        """The coordinator of ``txn_id`` registers its abort hook."""
        self._abort_fns[txn_id] = abort_fn

    def forget(self, txn_id: int) -> None:
        """A transaction finished (commit or abort): drop all its state."""
        self._waits.pop(txn_id, None)
        self._abort_fns.pop(txn_id, None)

    # -- wait bookkeeping ----------------------------------------------------------

    def block(
        self,
        ctx: HandlerContext,
        site_id: int,
        waiter: int,
        blockers: tuple[int, ...],
    ) -> None:
        """Record that ``waiter`` is blocked at ``site_id``; detect."""
        real = tuple(b for b in blockers if b != waiter)
        if not real:
            return
        self._waits.setdefault(waiter, {})[site_id] = real
        self._detect(ctx)

    def unblock(self, site_id: int, waiter: int) -> None:
        """``waiter`` stopped waiting at ``site_id`` (other sites may still
        hold it blocked)."""
        sites = self._waits.get(waiter)
        if sites is not None:
            sites.pop(site_id, None)
            if not sites:
                del self._waits[waiter]

    def edges(self) -> list[tuple[int, int]]:
        """The current global waits-for edges, sorted."""
        out = set()
        for waiter, sites in self._waits.items():
            for blockers in sites.values():
                for blocker in blockers:
                    out.add((waiter, blocker))
        return sorted(out)

    # -- detection -----------------------------------------------------------------

    def _detect(self, ctx: HandlerContext) -> None:
        graph = WaitsForGraph()
        for waiter, sites in self._waits.items():
            for blockers in sites.values():
                live = tuple(b for b in blockers if b != waiter)
                if live:
                    graph.add_waits(waiter, live)
        cycle = graph.find_cycle()
        if not cycle:
            return
        self.deadlocks_found += 1
        victim = graph.choose_victim(cycle)
        self.victims.append(victim)
        abort_fn = self._abort_fns.get(victim)
        self.forget(victim)
        if abort_fn is not None:
            abort_fn(ctx)

    def __repr__(self) -> str:
        return (
            f"GlobalDeadlockDetector(found={self.deadlocks_found}, "
            f"victims={self.victims}, waiting={sorted(self._waits)})"
        )
