"""Open-loop concurrent transaction driver (the "complete RAID" mode).

Mini-RAID's managing site submitted transactions one at a time.  The
complete-RAID extension replaces it with an open-loop source: transactions
arrive as a Poisson process at a configurable rate, many are in flight at
once, sites run strict 2PL (see :mod:`repro.site.locking`), and a global
detector resolves deadlocks (see :mod:`repro.system.deadlock`).

``run_open_loop`` is the entry point; it wires a cluster with
``concurrency_control=True``, drives the workload, and returns throughput,
latency, and conflict statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.records import TxnRecord
from repro.metrics.stats import Summary, summarize
from repro.metrics.streaming import StreamingTxnSink
from repro.net.endpoint import Endpoint, HandlerContext
from repro.net.message import Message, MessageType
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.deadlock import GlobalDeadlockDetector
from repro.txn.transaction import AbortReason
from repro.workload.base import WorkloadGenerator


@dataclass(slots=True)
class OpenLoopResult:
    """Outcome of one open-loop run."""

    txn_count: int
    commits: int
    aborts: int
    deadlock_aborts: int
    deadlocks_detected: int
    elapsed_ms: float
    latency: Summary
    lock_parks: int
    retries: int = 0
    # Scheduler events fired during the run (benchmark denominator).
    events_fired: int = 0
    records: list[TxnRecord] = field(repr=False, default_factory=list)

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.commits / (self.elapsed_ms / 1000.0)

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.txn_count if self.txn_count else 0.0


class OpenLoopManager(Endpoint):
    """Submits transactions at Poisson arrivals; collects outcomes."""

    def __init__(self, cluster: Cluster, deadlock_retries: int = 0,
                 retry_backoff_ms: float = 50.0) -> None:
        super().__init__(cluster.config.manager_id)
        self.cluster = cluster
        self.config = cluster.config
        self.metrics = cluster.metrics
        self._rng = cluster.rng.stream("openloop")
        self.finished = False
        self.deadlock_retries = deadlock_retries
        self.retry_backoff_ms = retry_backoff_ms
        self.retries_issued = 0
        self._expected = 0
        self._done = 0
        self._submit_times: dict[int, float] = {}
        # Retry bookkeeping: attempt id -> (ops, retries left, site chooser).
        self._attempt_ops: dict[int, list] = {}
        self._attempts_left: dict[int, int] = {}
        self._next_id = 0

    def launch(
        self,
        workload: WorkloadGenerator,
        txn_count: int,
        arrival_rate_tps: float,
        site_chooser=None,
    ) -> None:
        """Schedule ``txn_count`` arrivals at ``arrival_rate_tps``.

        ``site_chooser(seq, rng) -> site_id`` overrides the default
        uniform-random coordinator choice.
        """
        if txn_count < 1:
            raise ConfigurationError(f"txn_count must be >= 1: {txn_count}")
        if arrival_rate_tps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive: {arrival_rate_tps}"
            )
        self._expected = txn_count
        self._next_id = txn_count  # retry attempts get ids past the range
        mean_gap_ms = 1000.0 / arrival_rate_tps
        at = 0.0
        for seq in range(1, txn_count + 1):
            at += self._rng.expovariate(1.0 / mean_gap_ms)
            ops = workload.generate(seq, self._rng)
            if site_chooser is not None:
                site = site_chooser(seq, self._rng)
            else:
                site = self._rng.choice(self.config.site_ids)
            self._attempt_ops[seq] = ops
            self._attempts_left[seq] = self.deadlock_retries
            self.cluster.network.spawn(
                self,
                lambda ctx, s=seq, o=ops, dst=site: self._submit(ctx, s, o, dst),
                delay=at,
            )

    def _submit(self, ctx: HandlerContext, seq: int, ops, dst: int) -> None:
        self._submit_times[seq] = ctx.now
        ctx.send(
            dst,
            MessageType.MGR_SUBMIT_TXN,
            {"ops": [(op.kind, op.item_id) for op in ops]},
            txn_id=seq,
        )

    def handle(self, ctx: HandlerContext, msg: Message) -> None:
        if msg.mtype is not MessageType.MGR_TXN_DONE:
            raise ProtocolError(f"open-loop manager: unexpected message {msg}")
        payload = msg.payload
        record = TxnRecord(
            txn_id=msg.txn_id,
            seq=msg.txn_id,
            coordinator=msg.src,
            committed=payload["committed"],
            abort_reason=AbortReason(payload["reason"]),
            size=payload["size"],
            items_read=payload["items_read"],
            items_written=payload["items_written"],
            submitted_at=self._submit_times.get(msg.txn_id, payload["submitted_at"]),
            finished_at=ctx.now,
            coordinator_elapsed=payload["coordinator_elapsed"],
            participant_elapsed=self.metrics.pop_participants(msg.txn_id),
            copiers_requested=payload["copiers"],
            clear_notices_sent=payload["clear_notices"],
        )
        self.metrics.record_txn(record)
        if (
            not record.committed
            and record.abort_reason is AbortReason.LOCK_DEADLOCK
            and self._attempts_left.get(msg.txn_id, 0) > 0
        ):
            self._retry(ctx, msg.txn_id)
            return
        self._done += 1
        if self._done >= self._expected:
            self.finished = True

    def _retry(self, ctx: HandlerContext, old_id: int) -> None:
        """Resubmit a deadlock victim as a fresh attempt after a backoff."""
        self._next_id += 1
        new_id = self._next_id
        ops = self._attempt_ops.pop(old_id)
        self._attempt_ops[new_id] = ops
        self._attempts_left[new_id] = self._attempts_left.pop(old_id) - 1
        self.retries_issued += 1
        site = self._rng.choice(self.config.site_ids)
        backoff = self._rng.expovariate(1.0 / self.retry_backoff_ms)
        self.cluster.network.spawn(
            self,
            lambda ctx2, s=new_id, o=ops, dst=site: self._submit(ctx2, s, o, dst),
            delay=backoff,
        )


def run_open_loop(
    config: Optional[SystemConfig] = None,
    workload: Optional[WorkloadGenerator] = None,
    txn_count: int = 200,
    arrival_rate_tps: float = 20.0,
    deadlock_retries: int = 0,
    keep_records: bool = True,
) -> OpenLoopResult:
    """Run a concurrent open-loop workload and return its statistics.

    ``config.concurrency_control`` is forced on; without locks, concurrent
    2PC interleavings would not be serializable.

    ``keep_records=False`` routes every transaction outcome through a
    streaming sink instead of retaining ``TxnRecord`` objects: the result's
    ``records`` list is empty, ``latency`` comes from an online quantile
    sketch (see :mod:`repro.metrics.sketch` for the error bound), and
    memory stays flat however large ``txn_count`` grows.  The simulation
    itself is identical — only the measurement pipeline changes.
    """
    if config is None:
        config = SystemConfig()
    if not config.concurrency_control:
        raise ConfigurationError(
            "open-loop runs need SystemConfig(concurrency_control=True)"
        )
    sink: Optional[StreamingTxnSink] = None
    if keep_records:
        cluster = Cluster(config)
    else:
        sink = StreamingTxnSink()
        cluster = Cluster(
            config, metrics=MetricsCollector(txn_sink=sink, retain_txns=False)
        )
    detector = GlobalDeadlockDetector()
    for site in cluster.sites:
        assert site.lock_service is not None
        site.lock_service.detector = detector

    # Replace the serial managing site with the open-loop source.
    manager = OpenLoopManager(cluster, deadlock_retries=deadlock_retries)
    cluster.network.replace_endpoint(manager)

    if workload is None:
        from repro.workload.uniform import UniformWorkload

        workload = UniformWorkload(config.item_ids, config.max_txn_size)
    manager.launch(workload, txn_count, arrival_rate_tps)
    cluster.scheduler.run()
    if not manager.finished:
        raise SimulationError(
            f"open-loop run stalled: {manager._done}/{txn_count} outcomes"
        )

    metrics = cluster.metrics
    if sink is None:
        latency = summarize([t.elapsed for t in metrics.committed])
        deadlock_aborts = sum(
            1 for t in metrics.aborted if t.abort_reason is AbortReason.LOCK_DEADLOCK
        )
    else:
        latency = sink.latency_committed.to_summary()
        deadlock_aborts = sink.abort_count(AbortReason.LOCK_DEADLOCK.value)
    parks = sum(
        site.lock_service.parks for site in cluster.sites if site.lock_service
    )
    consistency = cluster.audit_consistency()
    if consistency:
        raise SimulationError(f"consistency violated: {consistency[:3]}")
    return OpenLoopResult(
        txn_count=txn_count,
        commits=metrics.counters.get("commits"),
        aborts=metrics.counters.get("aborts"),
        deadlock_aborts=deadlock_aborts,
        deadlocks_detected=detector.deadlocks_found,
        elapsed_ms=cluster.now,
        latency=latency,
        lock_parks=parks,
        retries=manager.retries_issued,
        events_fired=cluster.scheduler.fired,
        records=metrics.txns,
    )
